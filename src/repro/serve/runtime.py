"""The asyncio edge-fleet runtime: Algorithms 1 + 2 as long-lived tasks.

Topology (one run):

* per edge, a **feeder** task draws the slot's workload from its stream
  adapter and enqueues it on that edge's bounded work queue (blocking or
  shedding on backpressure), and an **actor** task drains the queue and
  drives the edge's :class:`~repro.sim.kernel.EdgeSlotKernel` — the
  Algorithm-1 select/observe loop;
* one **coordinator** task collects every edge's slot outcome, aggregates
  system emissions in edge order, drives the
  :class:`~repro.sim.kernel.TradingSlotKernel` (Algorithm 2 + market +
  ledger), persists snapshots at quiescent slot boundaries, and releases
  further slots on the configured clock.

Determinism: the kernels, RNG stream layout, and aggregation order are the
simulator's own (``Simulator.build_kernels``).  Under a virtual clock the
release depth is one slot — the lockstep schedule — so a serve run is
bit-identical to ``Simulator.run`` and is locked against the same golden
digests.  Wall-clock mode trades that lockstep for pipelining (up to
``pipeline_depth`` slots in flight) and optional shedding.
"""

from __future__ import annotations

import asyncio
from pathlib import Path

import numpy as np

from repro.faults.plan import FaultPlan
from repro.obs.events import ArrivalEvent, QueueShedEvent, SlotStartEvent, SnapshotEvent
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.serve.adapters import StreamAdapter, make_adapters
from repro.serve.clock import SlotClock, VirtualClock, WallClock, release_target
from repro.serve.config import ServeConfig
from repro.serve.http import StatusServer
from repro.serve.load import make_load_grid
from repro.serve.queues import BoundedWorkQueue, WorkItem
from repro.serve.snapshot import load_snapshot, save_snapshot
from repro.sim.kernel import EdgeSlotKernel, EdgeSlotOutcome, TradingSlotKernel
from repro.sim.results import SimulationResult
from repro.sim.scenario import Scenario, build_scenario
from repro.sim.simulator import Simulator
from repro.spec import RunSpec

__all__ = [
    "ServeRuntime",
    "SlotAggregator",
    "build_serve_kernels",
    "offline_outcome",
    "serve_run",
]

#: Zero-cost field values for synthesized offline outcomes.
_OFFLINE_COSTS = dict(
    expected_loss=0.0,
    slot_loss=0.0,
    latency=0.0,
    switch_cost=0.0,
    emissions_kg=0.0,
    correct=0.0,
)


def offline_outcome(
    t: int, edge: int, model: int, *, arrivals: int = 0
) -> EdgeSlotOutcome:
    """A zero-cost offline outcome for an edge that served nothing at ``t``.

    The shared synthesis used for dead shards, inactive (reconfigured-out)
    edges, and worker-side offline replay after a restart: ``arrivals`` are
    counted as dropped-offline so the accounting equation
    ``in == served + shed + offline`` stays exact.
    """
    return EdgeSlotOutcome(
        t=t,
        edge=edge,
        model=int(model),
        switched=False,
        offline=True,
        shed=False,
        arrivals=int(arrivals),
        served=0,
        **_OFFLINE_COSTS,
    )


class _WorkerFailure:
    """Carries a worker task's exception to the coordinator for re-raise."""

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


def build_serve_kernels(
    config: ServeConfig,
    *,
    tracer: Tracer | None = None,
    faults: FaultPlan | None = None,
) -> tuple[Scenario, list[StreamAdapter], list[EdgeSlotKernel], TradingSlotKernel]:
    """Materialize one serve run's scenario, adapters, and slot kernels.

    This is the determinism seam shared by the in-process runtime and every
    sharded worker: kernels and RNG streams are a pure function of the
    config (streams are keyed by *name*, not creation order), so any
    process that calls this with an equal config holds bit-identical
    kernels.  A shard worker steps only its own edges; the untouched rest
    cost nothing because streams draw lazily.
    """
    scenario = build_scenario(config.scenario)
    spec = RunSpec(
        selection=config.selection,
        trading=config.trading,
        seed=config.seed,
        label=config.effective_label,
        label_delay=config.label_delay,
        faults=faults if faults is not None else FaultPlan(),
    )
    sim = Simulator.from_spec(scenario, spec, tracer=tracer)
    arrivals, edge_kernels, trading_kernel = sim.build_kernels()
    load_counts = None
    if config.adapter == "shape":
        load_counts = make_load_grid(
            config.shape,
            horizon=scenario.horizon,
            num_edges=scenario.num_edges,
            total_events=config.shape_total_events,
            seed=config.shape_seed,
        )
    adapters = make_adapters(
        config.adapter,
        scenario,
        arrivals,
        edge_kernels,
        replay_log=config.replay_log,
        load_counts=load_counts,
    )
    ingress = config.ingress_config()
    if ingress is not None:
        # Lazy import: repro.ingress eagerly imports repro.serve
        # submodules, and repro.serve.__init__ imports this module.
        from repro.ingress.adapter import wrap_with_ingress

        adapters = wrap_with_ingress(
            adapters,
            config=ingress,
            scenario=scenario,
            seed=config.seed,
            tracer=tracer,
        )
    return scenario, adapters, edge_kernels, trading_kernel


class SlotAggregator:
    """The per-slot edge-order fold into result arrays plus the trade step.

    Extracted from the coordinator so the in-process runtime and the
    sharded parent aggregate *identically*: outcomes are folded in global
    edge order (the simulator's float-summation order), then the trading
    kernel steps once on the slot's system emissions.  Holds the result
    arrays, their snapshot/restore halves, and the final
    :class:`SimulationResult` assembly.
    """

    def __init__(self, scenario: Scenario, trading_kernel: TradingSlotKernel) -> None:
        self.scenario = scenario
        self.trading_kernel = trading_kernel
        horizon, num_edges = scenario.horizon, scenario.num_edges
        self.arrays: dict[str, np.ndarray] = {
            "expected_inference": np.zeros(horizon),
            "realized_loss": np.zeros(horizon),
            "compute_cost": np.zeros(horizon),
            "switching_cost": np.zeros(horizon),
            "emissions": np.zeros(horizon),
            "bought": np.zeros(horizon),
            "sold": np.zeros(horizon),
            "trading_cost": np.zeros(horizon),
            "arrivals_total": np.zeros(horizon),
            "accuracy": np.zeros(horizon),
            "selections": np.zeros((horizon, num_edges), dtype=int),
            "switches": np.zeros((horizon, num_edges), dtype=bool),
        }

    def fold(self, t: int, outcomes: list[EdgeSlotOutcome]) -> None:
        """Fold slot ``t``'s outcomes (edge order) and step the trading kernel."""
        arrays = self.arrays
        slot_emissions = 0.0
        slot_correct = 0.0
        slot_arrivals = 0
        for i, outcome in enumerate(outcomes):
            arrays["selections"][t, i] = outcome.model
            arrays["switches"][t, i] = outcome.switched
            if outcome.offline:
                continue
            arrays["expected_inference"][t] += outcome.expected_loss
            arrays["realized_loss"][t] += outcome.slot_loss
            arrays["compute_cost"][t] += outcome.latency
            if outcome.switched:
                arrays["switching_cost"][t] += outcome.switch_cost
            slot_emissions += outcome.emissions_kg
            slot_correct += outcome.correct
            slot_arrivals += outcome.served

        arrays["emissions"][t] = slot_emissions
        arrays["arrivals_total"][t] = slot_arrivals
        arrays["accuracy"][t] = (
            slot_correct / slot_arrivals if slot_arrivals else np.nan
        )
        (
            arrays["bought"][t],
            arrays["sold"][t],
            arrays["trading_cost"][t],
        ) = self.trading_kernel.step(t, slot_emissions)

    def partial_arrays(self, next_slot: int) -> dict[str, np.ndarray]:
        """Snapshot copies of the arrays' completed prefix."""
        return {
            name: array[:next_slot].copy()
            for name, array in self.arrays.items()
        }

    def load_arrays(self, saved: dict[str, np.ndarray]) -> None:
        """Restore the completed prefix captured by :meth:`partial_arrays`."""
        for name, prefix in saved.items():
            self.arrays[name][: len(prefix)] = prefix

    def result(self, label: str) -> SimulationResult:
        """Assemble the completed run's :class:`SimulationResult`."""
        scenario, arrays = self.scenario, self.arrays
        return SimulationResult(
            label=label,
            horizon=scenario.horizon,
            num_edges=scenario.num_edges,
            carbon_cap=scenario.config.carbon_cap_kg,
            expected_inference_cost=arrays["expected_inference"],
            realized_inference_loss=arrays["realized_loss"],
            compute_cost=arrays["compute_cost"],
            switching_cost=arrays["switching_cost"],
            emissions=arrays["emissions"],
            bought=arrays["bought"],
            sold=arrays["sold"],
            trading_cost=arrays["trading_cost"],
            buy_prices=scenario.prices.buy.copy(),
            sell_prices=scenario.prices.sell.copy(),
            arrivals=arrays["arrivals_total"],
            accuracy=arrays["accuracy"],
            selections=arrays["selections"],
            switches=arrays["switches"],
        )


class ServeRuntime:
    """One streaming serve run over a scenario's horizon.

    Construct from a :class:`ServeConfig` (the scenario is built from its
    embedded :class:`~repro.sim.config.ScenarioConfig`), or resume one from
    disk with :meth:`from_snapshot`.  :meth:`run` executes to the end of the
    horizon and returns the same :class:`SimulationResult` the simulator
    would; ``run(max_slots=k)`` stops after ``k`` completed slots (the
    "killed mid-horizon" path — state survives via snapshots).
    """

    def __init__(
        self,
        config: ServeConfig,
        *,
        tracer: Tracer | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        self.config = config
        self.label = config.effective_label
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._rebind_tracer = tracer is not None
        (
            self.scenario,
            self.adapters,
            self.edge_kernels,
            self.trading_kernel,
        ) = build_serve_kernels(config, tracer=tracer, faults=faults)
        self.horizon = self.scenario.horizon
        self.num_edges = self.scenario.num_edges
        self.clock: SlotClock = (
            VirtualClock()
            if config.virtual_clock
            else WallClock(config.slot_duration)
        )
        self.queues = [
            BoundedWorkQueue(config.queue_capacity) for _ in range(self.num_edges)
        ]
        self.completed_slot = -1
        self.status_server: StatusServer | None = None
        #: Set once run_async has spawned the fleet (and the status server,
        #: when one is configured) — the event-driven "server is up" wait.
        self.server_ready = asyncio.Event()
        self.aggregator = SlotAggregator(self.scenario, self.trading_kernel)
        self._arrays = self.aggregator.arrays
        tracer_obj = self.tracer
        self._events_in = tracer_obj.counter("serve/events_in")
        self._events_served = tracer_obj.counter("serve/events_served")
        self._events_shed = tracer_obj.counter("serve/events_shed")
        self._events_dropped_offline = tracer_obj.counter(
            "serve/events_dropped_offline"
        )
        self._slots_completed = tracer_obj.counter("serve/slots_completed")
        self._snapshots_taken = tracer_obj.counter("serve/snapshots")
        ingress_config = config.ingress_config()
        self.ingress = None
        if ingress_config is not None:
            from repro.ingress.stats import IngressStats

            self.ingress = IngressStats(ingress_config.class_names)
            self._requests_in = tracer_obj.counter("ingress/requests_in")
            self._requests_dropped = tracer_obj.counter("ingress/requests_dropped")
            self._requests_deferred = tracer_obj.counter(
                "ingress/requests_deferred"
            )
            self._deadline_hits = tracer_obj.counter("ingress/deadline_hits")
            self._deadline_misses = tracer_obj.counter("ingress/deadline_misses")
        self._reports: asyncio.Queue[EdgeSlotOutcome | _WorkerFailure] | None = None

    @classmethod
    def from_snapshot(
        cls,
        path: str | Path,
        *,
        tracer: Tracer | None = None,
        faults: FaultPlan | None = None,
    ) -> "ServeRuntime":
        """Rebuild a runtime mid-horizon from a persisted snapshot."""
        state = load_snapshot(path)
        config = ServeConfig.from_dict(state["config"])
        runtime = cls(config, tracer=tracer, faults=faults)
        runtime._restore(state)
        return runtime

    def _restore(self, state: dict[str, object]) -> None:
        if state["label"] != self.label:
            raise ValueError(
                f"snapshot is for run {state['label']!r}, "
                f"this runtime serves {self.label!r}"
            )
        next_slot = int(state["next_slot"])
        if not 0 <= next_slot <= self.horizon:
            raise ValueError(
                f"snapshot resumes at slot {next_slot}, "
                f"horizon is {self.horizon}"
            )
        for kernel, kernel_state in zip(self.edge_kernels, state["edges"]):
            kernel.load_state(kernel_state)
        for adapter, adapter_state in zip(self.adapters, state["adapters"]):
            adapter.load_state(adapter_state)
        self.trading_kernel.load_state(state["trading"])
        if self._rebind_tracer:
            for i, kernel in enumerate(self.edge_kernels):
                kernel.policy.bind_tracer(self.tracer, edge=i)
            self.trading_kernel.policy.bind_tracer(self.tracer)
            self.trading_kernel.market.bind_tracer(self.tracer)
            self.trading_kernel.ledger.bind_tracer(self.tracer)
        self.aggregator.load_arrays(state["arrays"])
        self.completed_slot = next_slot - 1

    def snapshot_state(self) -> dict[str, object]:
        """The full controller state as one picklable dict."""
        next_slot = self.completed_slot + 1
        return {
            "label": self.label,
            "config": self.config.to_dict(),
            "next_slot": next_slot,
            "edges": [kernel.state_dict() for kernel in self.edge_kernels],
            "adapters": [adapter.state_dict() for adapter in self.adapters],
            "trading": self.trading_kernel.state_dict(),
            "arrays": self.aggregator.partial_arrays(next_slot),
        }

    def health(self) -> dict[str, object]:
        """Liveness payload for ``GET /healthz``."""
        done = self.completed_slot >= self.horizon - 1
        return {
            "status": "done" if done else "serving",
            "label": self.label,
            "completed_slot": self.completed_slot,
            "released_slot": self.clock.released,
            "horizon": self.horizon,
            "num_edges": self.num_edges,
            "queues": [
                {
                    "edge": i,
                    "depth_events": queue.depth_events,
                    "depth_items": queue.depth_items,
                    "peak_events": queue.stats.peak_events,
                    "rejected": queue.stats.rejected,
                }
                for i, queue in enumerate(self.queues)
            ],
        }

    def metrics(self) -> dict[str, object]:
        """Tracer counters/timers and event tallies for ``GET /metrics``."""
        payload: dict[str, object] = dict(self.tracer.metrics_snapshot())
        payload["events"] = self.tracer.event_counts()
        return payload

    def result(self) -> SimulationResult:
        """The completed run's records (requires the full horizon served)."""
        if self.completed_slot < self.horizon - 1:
            raise RuntimeError(
                f"run stopped after slot {self.completed_slot}; "
                f"horizon is {self.horizon} — resume it before asking for results"
            )
        return self.aggregator.result(self.label)

    def run(self, *, max_slots: int | None = None) -> SimulationResult | None:
        """Serve the horizon (or ``max_slots`` of it) on a fresh event loop.

        Returns the :class:`SimulationResult` when the horizon completed,
        ``None`` after a partial run (resume from the last snapshot).
        """
        return asyncio.run(self.run_async(max_slots=max_slots))

    async def run_async(
        self, *, max_slots: int | None = None
    ) -> SimulationResult | None:
        """Async entry point: spawn the fleet, await completion."""
        start = self.completed_slot + 1
        stop = self.horizon
        if max_slots is not None:
            if max_slots < 1:
                raise ValueError(f"max_slots must be >= 1, got {max_slots}")
            stop = min(stop, start + max_slots)
        if start >= stop:
            return self.result() if stop == self.horizon else None
        self._reports = asyncio.Queue()
        if self.config.health_port is not None:
            self.status_server = StatusServer(
                {"/healthz": self.health, "/metrics": self.metrics},
                port=self.config.health_port,
            )
            await self.status_server.start()
        self.server_ready.set()
        try:
            await self._release_through(self._release_target(start - 1))
            workers = [
                asyncio.create_task(
                    self._feeder(i, start, stop), name=f"serve-feeder-{i}"
                )
                for i in range(self.num_edges)
            ]
            workers += [
                asyncio.create_task(
                    self._actor(i, start, stop), name=f"serve-actor-{i}"
                )
                for i in range(self.num_edges)
            ]
            try:
                await self._coordinate(start, stop)
            finally:
                for task in workers:
                    if not task.done():
                        task.cancel()
                await asyncio.gather(*workers, return_exceptions=True)
        finally:
            if self.status_server is not None:
                await self.status_server.stop()
        return self.result() if stop == self.horizon else None

    def _release_target(self, completed: int) -> int:
        """Furthest slot safe to release after completing ``completed``."""
        return release_target(
            completed,
            horizon=self.horizon,
            lockstep=self.config.virtual_clock,
            pipeline_depth=self.config.pipeline_depth,
            snapshot_every=self.config.snapshot_every,
        )

    async def _release_through(self, target: int) -> None:
        """Release slots up to ``target``, emitting their slot-start events."""
        tracer = self.tracer
        if tracer.enabled:
            for t in range(self.clock.released + 1, target + 1):
                tracer.emit(SlotStartEvent(t=t, horizon=self.horizon))
        await self.clock.release(target)

    async def _feeder(self, edge: int, start: int, stop: int) -> None:
        adapter = self.adapters[edge]
        queue = self.queues[edge]
        tracer = self.tracer
        shed_mode = self.config.backpressure == "shed"
        try:
            for t in range(start, stop):
                await self.clock.wait_for_slot(t)
                await self.clock.pace(t)
                item = adapter.next_item(t)
                self._events_in.increment(item.count)
                if tracer.enabled:
                    tracer.emit(ArrivalEvent(t=t, edge=edge, count=item.count))
                if shed_mode:
                    admitted = await queue.put(item, block=False)
                    if not admitted:
                        self._events_shed.increment(item.count)
                        if tracer.enabled:
                            tracer.emit(
                                QueueShedEvent(t=t, edge=edge, count=item.count)
                            )
                        await queue.put(
                            WorkItem(t=t, count=item.count, shed=True),
                            block=False,
                        )
                else:
                    await queue.put(item)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            assert self._reports is not None
            await self._reports.put(_WorkerFailure(exc))

    async def _actor(self, edge: int, start: int, stop: int) -> None:
        kernel = self.edge_kernels[edge]
        queue = self.queues[edge]
        delay = self.config.label_delay
        try:
            for t in range(start, stop):
                item = await queue.get()
                outcome = kernel.step(
                    item.t, item.count, indices=item.indices, shed=item.shed
                )
                if outcome.offline:
                    self._events_dropped_offline.increment(outcome.arrivals)
                else:
                    self._events_served.increment(outcome.served)
                if delay:
                    kernel.deliver_due(t - delay)
                assert self._reports is not None
                await self._reports.put(outcome)
            if delay and stop == self.horizon:
                kernel.deliver_due(self.horizon)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            assert self._reports is not None
            await self._reports.put(_WorkerFailure(exc))

    async def _coordinate(self, start: int, stop: int) -> None:
        assert self._reports is not None
        num_edges = self.num_edges
        buffered: dict[tuple[int, int], EdgeSlotOutcome] = {}
        for t in range(start, stop):
            while any((t, i) not in buffered for i in range(num_edges)):
                report = await self._reports.get()
                if isinstance(report, _WorkerFailure):
                    raise report.exc
                buffered[(report.t, report.edge)] = report

            outcomes = [buffered.pop((t, i)) for i in range(num_edges)]
            if self.ingress is not None:
                for outcome in outcomes:
                    self._absorb_ingress(
                        self.adapters[outcome.edge].resolve_slot(outcome)
                    )
            self.aggregator.fold(t, outcomes)
            self.completed_slot = t
            self._slots_completed.increment()

            every = self.config.snapshot_every
            if every and (t + 1) % every == 0 and t + 1 < self.horizon:
                await self._take_snapshot(t)
            await self._release_through(self._release_target(t))

    def _absorb_ingress(self, payload: dict[str, object]) -> None:
        """Fold one edge's resolved slot stats into the run accounting."""
        assert self.ingress is not None
        self.ingress.absorb(payload)
        self._requests_in.increment(payload["in"])
        self._requests_dropped.increment(payload["dropped"])
        self._requests_deferred.increment(payload["deferred"])
        self._deadline_hits.increment(payload["hits"])
        self._deadline_misses.increment(payload["misses"])

    async def _take_snapshot(self, t: int) -> None:
        busy = [i for i, queue in enumerate(self.queues) if queue.depth_items]
        if busy:
            raise RuntimeError(
                f"snapshot at slot boundary {t + 1} found non-quiescent "
                f"queues on edges {busy} — release capping is broken"
            )
        path = self.config.snapshot_path
        assert path is not None  # enforced by ServeConfig validation
        # Capture state synchronously at the quiescent boundary, then hand
        # the blocking file write to a worker thread: feeders resumed during
        # the await cannot perturb what gets persisted.
        state = self.snapshot_state()
        await asyncio.to_thread(save_snapshot, path, state)
        self._snapshots_taken.increment()
        if self.tracer.enabled:
            self.tracer.emit(SnapshotEvent(t=t, path=str(path)))


def serve_run(
    config: ServeConfig,
    *,
    tracer: Tracer | None = None,
    faults: FaultPlan | None = None,
    max_slots: int | None = None,
) -> SimulationResult | None:
    """One-call serve API: build a runtime, run it, return the result."""
    runtime = ServeRuntime(config, tracer=tracer, faults=faults)
    return runtime.run(max_slots=max_slots)
