"""Pluggable slot clocks gating how far ahead the fleet may run.

The coordinator *releases* slots as it completes them; feeders *wait* for a
slot's release before generating its workload.  :class:`VirtualClock`
advances only on releases — time is logical, runs are deterministic, and a
release depth of one yields the lockstep schedule that is bit-identical to
``Simulator.run``.  :class:`WallClock` additionally paces each slot to real
time (``slot_duration`` seconds per slot, measured on the event loop's
monotonic clock — never the wall-time-of-day clock, which reprolint RPL008
bans from library code).
"""

from __future__ import annotations

import asyncio

__all__ = ["SlotClock", "VirtualClock", "WallClock", "release_target"]


def release_target(
    completed: int,
    *,
    horizon: int,
    lockstep: bool,
    pipeline_depth: int,
    snapshot_every: int = 0,
    restart_state_every: int = 0,
    barrier: int | None = None,
) -> int:
    """Furthest slot safe to release after completing ``completed``.

    Lockstep mode (virtual clocks) releases one slot at a time — the
    schedule that is bit-identical to ``Simulator.run``; otherwise up to
    ``pipeline_depth`` slots may be in flight.  Releases never cross the
    next snapshot boundary — nor, when given, the next restart-checkpoint
    boundary (``restart_state_every``) or reconfiguration ``barrier`` —
    so when the coordinator reaches one, every worker is provably
    quiescent.  Shared by the in-process coordinator
    (:class:`~repro.serve.runtime.ServeRuntime`) and the sharded parent
    (:class:`~repro.serve.shard.ShardRuntime`) so the two runtimes release
    identical schedules.
    """
    depth = 1 if lockstep else pipeline_depth
    target = completed + depth
    for every in (snapshot_every, restart_state_every):
        if every:
            boundary = ((completed + 1) // every + 1) * every
            target = min(target, boundary - 1)
    if barrier is not None:
        target = min(target, barrier - 1)
    return min(target, horizon - 1)


class SlotClock:
    """Base release machinery: a monotone high-water mark of runnable slots."""

    def __init__(self) -> None:
        self._released = -1
        self._condition = asyncio.Condition()

    @property
    def released(self) -> int:
        """Highest slot index currently released (-1 before any release)."""
        return self._released

    async def wait_for_slot(self, t: int) -> None:
        """Block until slot ``t`` has been released."""
        if self._released >= t:
            return
        async with self._condition:
            await self._condition.wait_for(lambda: self._released >= t)

    async def release(self, upto: int) -> None:
        """Release every slot up to and including ``upto`` (monotone)."""
        if upto <= self._released:
            return
        async with self._condition:
            self._released = upto
            self._condition.notify_all()

    async def pace(self, t: int) -> None:
        """Hold slot ``t`` to real time; virtual clocks return immediately."""


class VirtualClock(SlotClock):
    """Logical time: slots run as fast as the release schedule allows."""


class WallClock(SlotClock):
    """Real-time pacing: slot ``t`` starts ``t * slot_duration`` seconds in.

    ``slot_duration=0`` degrades to free-running (releases still gate), which
    is what load tests use to saturate the queues without waiting.
    """

    def __init__(self, slot_duration: float) -> None:
        if slot_duration < 0:
            raise ValueError(
                f"slot_duration must be non-negative, got {slot_duration}"
            )
        super().__init__()
        self.slot_duration = slot_duration
        self._origin: float | None = None

    async def pace(self, t: int) -> None:
        """Sleep until slot ``t``'s scheduled start on the monotonic clock."""
        if self.slot_duration == 0:
            return
        loop = asyncio.get_running_loop()
        if self._origin is None:
            self._origin = loop.time()
        delay = self._origin + t * self.slot_duration - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
