"""Stdlib-only health/metrics endpoint for a running serve fleet.

A tiny HTTP/1.1 responder on ``asyncio.start_server`` — no frameworks, no
threads.  Two JSON routes:

* ``GET /healthz`` — liveness plus slot progress and queue depths;
* ``GET /metrics`` — the tracer's counters/timers and event counts.

Bind ``port=0`` to take an ephemeral port (tests do); the bound port is
available as :attr:`StatusServer.port` after :meth:`StatusServer.start`.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable

__all__ = ["StatusServer"]

_STATUS_LINES = {
    200: "HTTP/1.1 200 OK",
    404: "HTTP/1.1 404 Not Found",
    405: "HTTP/1.1 405 Method Not Allowed",
}


class StatusServer:
    """Serves runtime status snapshots over local HTTP.

    ``routes`` maps URL paths to zero-argument callables returning
    JSON-serializable payloads; they run on the event loop, so they must be
    cheap synchronous reads (the runtime's are).
    """

    def __init__(
        self,
        routes: dict[str, Callable[[], dict[str, object]]],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.routes = dict(routes)
        self.host = host
        self._requested_port = port
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None
        self.requests_served = 0

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(  # noqa: RPL014 -- start/stop are serialized lifecycle transitions driven by the runtime, never concurrent
            self._handle, self.host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, path = parts[0], parts[1]
            if method != "GET":
                status, payload = 405, {"error": "only GET is supported"}
            else:
                route = self.routes.get(path)
                if route is None:
                    status, payload = 404, {
                        "error": f"no route {path}",
                        "routes": sorted(self.routes),
                    }
                else:
                    status, payload = 200, route()
            body = json.dumps(payload).encode("utf-8")
            writer.write(
                (
                    f"{_STATUS_LINES[status]}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode("latin-1")
            )
            writer.write(body)
            await writer.drain()
            self.requests_served += 1
        finally:
            writer.close()
