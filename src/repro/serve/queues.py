"""Bounded per-edge work queues with event-weighted backpressure.

Capacity is measured in *events* (sample counts), not items: a slot
carrying 80 samples occupies 80 units, so the bound tracks actual memory
and compute debt rather than item counts.  A burst larger than the whole
capacity is still admitted when the queue is empty (otherwise ``block``
mode would deadlock on it); shed markers weigh nothing and always fit, so
an edge sees every slot even when its payload was dropped.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["BoundedWorkQueue", "QueueStats", "WorkItem"]


@dataclass(frozen=True)
class WorkItem:
    """One slot's workload for one edge.

    ``indices`` carries pre-drawn data-pool indices when the adapter owns
    the draw (dataset adapter); ``None`` lets the edge kernel draw.  A
    ``shed`` item records a payload dropped at the queue: the kernel still
    advances its block schedule, but serves nothing.
    """

    t: int
    count: int
    indices: np.ndarray | None = None
    shed: bool = False

    @property
    def weight(self) -> int:
        """Queue-capacity units this item occupies (shed markers are free)."""
        return 0 if self.shed else self.count


@dataclass
class QueueStats:
    """Occupancy accounting for one work queue."""

    events: int = 0
    items: int = 0
    peak_events: int = 0
    total_enqueued: int = 0
    rejected: int = 0


class BoundedWorkQueue:
    """An asyncio FIFO bounded by total event weight.

    ``put`` blocks until the item fits (``block=True``) or returns ``False``
    immediately (``block=False`` — the shed path).  ``get`` blocks until an
    item is available.  Single-producer/single-consumer per edge, so FIFO
    order is also slot order.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = QueueStats()
        self._items: deque[WorkItem] = deque()
        self._condition = asyncio.Condition()

    def _has_room(self, weight: int) -> bool:
        if weight == 0 or self.stats.items == 0:
            return True
        return self.stats.events + weight <= self.capacity

    @property
    def depth_events(self) -> int:
        """Event weight currently enqueued."""
        return self.stats.events

    @property
    def depth_items(self) -> int:
        """Items currently enqueued."""
        return self.stats.items

    async def put(self, item: WorkItem, *, block: bool = True) -> bool:
        """Enqueue ``item``; returns whether it was admitted."""
        async with self._condition:
            if not block and not self._has_room(item.weight):
                self.stats.rejected += 1
                return False
            await self._condition.wait_for(lambda: self._has_room(item.weight))
            self._items.append(item)
            stats = self.stats
            stats.events += item.weight
            stats.items += 1
            stats.total_enqueued += 1
            stats.peak_events = max(stats.peak_events, stats.events)
            self._condition.notify_all()
            return True

    async def get(self) -> WorkItem:
        """Dequeue the oldest item, waiting for one if the queue is empty."""
        async with self._condition:
            await self._condition.wait_for(lambda: self.stats.items > 0)
            item = self._items.popleft()
            self.stats.events -= item.weight
            self.stats.items -= 1
            self._condition.notify_all()
            return item
