"""Live fleet reconfiguration plans for the sharded edge tier.

A :class:`ReconfigPlan` declares fleet-shape changes to apply at slot
*barriers* during a sharded run: :class:`AddEdge` / :class:`RemoveEdge`
toggle membership of an edge in the *active set* (over the scenario's
fixed edge capacity), and :class:`Rebalance` changes the worker count.
Plans are JSON round-trippable and CLI-loadable
(``repro serve --reconfig PLAN.json``), mirroring
:class:`~repro.faults.plan.FaultPlan`.

Determinism contract
--------------------
A barrier is a quiescent slot boundary: the parent caps releases at the
next barrier, drains the whole fleet (every worker captures state and
exits), applies the ops, rescales the trading kernel by the active-count
ratio, repartitions the active edges with
:func:`~repro.serve.shard.shard_edges`, and respawns.  Because workers
rebuild kernels from the same name-keyed RNG streams and restore the
captured per-edge state, a reconfigured run is bit-reproducible against
itself; and because a factor-1.0 trading rescale is exact and inactive
edges never existed in a *no-op* plan (e.g. a bare :class:`Rebalance` to
the same worker count), a no-op-reconfigured virtual-clock run is
bit-identical to the unreconfigured golden digests.  Inactive edges are
folded as parent-synthesized offline outcomes (zero arrivals), so the
accounting equation ``in == served + shed + offline`` holds across any
plan.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar

__all__ = [
    "AddEdge",
    "RECONFIG_OPS",
    "Rebalance",
    "ReconfigOp",
    "ReconfigPlan",
    "RemoveEdge",
    "apply_op",
    "load_reconfig_plan",
    "register_reconfig",
]

#: Registry of op kind tag -> op class, populated by ``register_reconfig``.
RECONFIG_OPS: dict[str, type["ReconfigOp"]] = {}


def register_reconfig(cls: type["ReconfigOp"]) -> type["ReconfigOp"]:
    """Class decorator adding a reconfig op to :data:`RECONFIG_OPS`."""
    if cls.kind in RECONFIG_OPS:
        raise ValueError(f"duplicate reconfig op tag {cls.kind!r}")
    RECONFIG_OPS[cls.kind] = cls
    return cls


@dataclass(frozen=True)
class ReconfigOp:
    """Base reconfiguration op, applied at slot barrier ``at``."""

    at: int

    #: Stable wire tag written to the ``"kind"`` key of the JSON form.
    kind: ClassVar[str] = "reconfig"

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"at must be non-negative, got {self.at}")

    def as_dict(self) -> dict[str, object]:
        """JSON-ready mapping: the fields plus the ``"kind"`` tag."""
        return {"kind": self.kind, **dataclasses.asdict(self)}


@register_reconfig
@dataclass(frozen=True)
class AddEdge(ReconfigOp):
    """Activate edge ``edge`` (must be inactive) from slot ``at`` on.

    The edge joins with fresh kernel state unless it was active before
    (re-adds restore the state captured when it was removed) and silently
    catches up its RNG streams over the slots it missed.
    """

    edge: int = 0

    kind: ClassVar[str] = "add_edge"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.edge < 0:
            raise ValueError(f"edge must be non-negative, got {self.edge}")


@register_reconfig
@dataclass(frozen=True)
class RemoveEdge(ReconfigOp):
    """Deactivate edge ``edge`` (must be active) from slot ``at`` on."""

    edge: int = 0

    kind: ClassVar[str] = "remove_edge"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.edge < 0:
            raise ValueError(f"edge must be non-negative, got {self.edge}")


@register_reconfig
@dataclass(frozen=True)
class Rebalance(ReconfigOp):
    """Repartition the active edges across ``num_workers`` workers.

    ``Rebalance`` to the current worker count is the canonical *no-op*
    plan: the fleet drains, respawns, and must stay bit-identical to an
    unreconfigured run.
    """

    num_workers: int = 1

    kind: ClassVar[str] = "rebalance"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )


@dataclass(frozen=True)
class ReconfigPlan:
    """An immutable, barrier-ordered collection of reconfiguration ops."""

    ops: tuple[ReconfigOp, ...] = ()

    def __post_init__(self) -> None:
        for op in self.ops:
            if not isinstance(op, ReconfigOp):
                raise TypeError(
                    f"reconfig plan entries must be ReconfigOp, got {op!r}"
                )
        object.__setattr__(
            self, "ops", tuple(sorted(self.ops, key=lambda op: op.at))
        )

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def is_empty(self) -> bool:
        return not self.ops

    def barriers(self) -> tuple[int, ...]:
        """Distinct barrier slots, ascending."""
        return tuple(sorted({op.at for op in self.ops}))

    def ops_at(self, slot: int) -> tuple[ReconfigOp, ...]:
        """Every op scheduled at barrier ``slot``, in plan order."""
        return tuple(op for op in self.ops if op.at == slot)

    def to_dict(self) -> dict[str, object]:
        return {"reconfig": [op.as_dict() for op in self.ops]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "ReconfigPlan":
        entries = payload.get("reconfig", [])
        ops = []
        for entry in entries:
            fields = dict(entry)
            kind = fields.pop("kind", None)
            op_cls = RECONFIG_OPS.get(kind)
            if op_cls is None:
                raise ValueError(
                    f"unknown reconfig op {kind!r}; "
                    f"expected one of {sorted(RECONFIG_OPS)}"
                )
            try:
                ops.append(op_cls(**fields))
            except TypeError as exc:
                raise ValueError(f"bad reconfig op {entry!r}: {exc}") from exc
        return cls(ops=tuple(ops))

    @classmethod
    def from_json(cls, text: str) -> "ReconfigPlan":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("reconfig plan JSON must hold an object")
        return cls.from_dict(payload)

    def fleet_at(
        self, *, capacity: int, num_workers: int, upto_slot: int
    ) -> tuple[tuple[int, ...], int]:
        """The (active edges, worker count) after every op with ``at <=
        upto_slot`` — how a resumed or freshly constructed runtime derives
        its initial fleet shape without a snapshot-format change."""
        active = set(range(capacity))
        workers = num_workers
        for op in self.ops:
            if op.at > upto_slot:
                break
            active, workers = apply_op(op, active, workers, capacity)
        return tuple(sorted(active)), workers


def apply_op(
    op: ReconfigOp, active: set[int], num_workers: int, capacity: int
) -> tuple[set[int], int]:
    """Apply one op to ``(active, num_workers)``, validating fleet limits."""
    active = set(active)
    if isinstance(op, AddEdge):
        if op.edge >= capacity:
            raise ValueError(
                f"add_edge at slot {op.at}: edge {op.edge} exceeds the "
                f"scenario capacity of {capacity} edges"
            )
        if op.edge in active:
            raise ValueError(
                f"add_edge at slot {op.at}: edge {op.edge} is already active"
            )
        active.add(op.edge)
    elif isinstance(op, RemoveEdge):
        if op.edge not in active:
            raise ValueError(
                f"remove_edge at slot {op.at}: edge {op.edge} is not active"
            )
        if len(active) == 1:
            raise ValueError(
                f"remove_edge at slot {op.at} would leave the fleet empty"
            )
        active.discard(op.edge)
    elif isinstance(op, Rebalance):
        num_workers = op.num_workers
    else:  # pragma: no cover - registry guards construction
        raise TypeError(f"unknown reconfig op {op!r}")
    return active, num_workers


def load_reconfig_plan(path: str | Path) -> ReconfigPlan:
    """Load a :class:`ReconfigPlan` from a JSON file."""
    return ReconfigPlan.from_json(Path(path).read_text(encoding="utf-8"))
