"""Configuration for the streaming serve runtime.

A :class:`ServeConfig` bundles the scenario to serve (a plain
:class:`~repro.sim.config.ScenarioConfig`), the policy combination, and the
runtime knobs — clock mode, queue capacity, backpressure policy, snapshot
cadence, health endpoint.  It round-trips through JSON so ``repro serve
--config serve.json`` and snapshot files can reconstruct the exact runtime.

Two invariants are enforced at construction because they protect the
determinism contract:

* virtual-clock mode cannot shed (shedding depends on wall-clock races, so
  a deterministic run must use ``block`` backpressure);
* the replay adapter needs a trace to replay.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.sim.config import CostWeights, ScenarioConfig

__all__ = [
    "ADAPTER_NAMES",
    "BACKPRESSURE_MODES",
    "WORKER_DEATH_POLICIES",
    "ServeConfig",
]

#: Stream adapters selectable by name in a serve config.
ADAPTER_NAMES = ("poisson", "replay", "dataset", "shape")

#: What a feeder does when an edge's work queue is full.
BACKPRESSURE_MODES = ("block", "shed")

#: What the sharded parent does when a worker process dies mid-horizon:
#: ``"fail"`` raises immediately; ``"degrade"`` marks the dead shard's
#: edges offline for the remaining slots and completes the run with the
#: accounting equation (and the ledger) intact; ``"restart"`` respawns the
#: worker from its last restart checkpoint with capped exponential backoff,
#: replaying the missed slots as offline outcomes, and falls back to
#: ``"degrade"`` once the ``max_restarts`` budget is spent.
WORKER_DEATH_POLICIES = ("fail", "degrade", "restart")


def _scenario_from_dict(payload: dict) -> ScenarioConfig:
    fields = dict(payload)
    weights = fields.get("weights")
    if isinstance(weights, dict):
        try:
            fields["weights"] = CostWeights(**weights)
        except TypeError as exc:
            raise ValueError(f"bad cost weights {weights!r}: {exc}") from exc
    try:
        return ScenarioConfig(**fields)
    except TypeError as exc:
        raise ValueError(f"bad scenario config {payload!r}: {exc}") from exc


@dataclass(frozen=True)
class ServeConfig:
    """Everything needed to launch (or resume) one serve run."""

    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)
    selection: str = "Ours"
    trading: str = "Ours"
    seed: int = 0
    label: str | None = None
    label_delay: int = 0
    adapter: str = "poisson"
    replay_log: str | None = None
    shape: str | None = None
    shape_total_events: int = 0
    shape_seed: int = 0
    virtual_clock: bool = True
    slot_duration: float = 0.0
    queue_capacity: int = 1024
    backpressure: str = "block"
    pipeline_depth: int = 8
    snapshot_every: int = 0
    snapshot_path: str | None = None
    health_port: int | None = None
    num_workers: int = 1
    on_worker_death: str = "fail"
    max_restarts: int = 3
    restart_backoff_s: float = 0.05
    restart_backoff_max_s: float = 2.0
    restart_state_every: int = 8
    #: Request-level ingress tier config as its JSON dict form
    #: (:meth:`repro.ingress.IngressConfig.to_dict`); ``None`` disables
    #: ingress.  Stored as a dict so the serve config stays a plain
    #: JSON round-tripper and snapshots carry the full ingress contract.
    ingress: dict | None = None

    def __post_init__(self) -> None:
        if self.adapter not in ADAPTER_NAMES:
            raise ValueError(
                f"unknown adapter {self.adapter!r}; expected one of {ADAPTER_NAMES}"
            )
        if self.backpressure not in BACKPRESSURE_MODES:
            raise ValueError(
                f"unknown backpressure mode {self.backpressure!r}; "
                f"expected one of {BACKPRESSURE_MODES}"
            )
        if self.virtual_clock and self.backpressure == "shed":
            raise ValueError(
                "virtual-clock mode cannot shed: deterministic runs must "
                'use backpressure="block"'
            )
        if self.adapter == "replay" and not self.replay_log:
            raise ValueError('adapter "replay" requires replay_log')
        if self.adapter == "shape":
            from repro.serve.load import SHAPE_NAMES

            if self.shape not in SHAPE_NAMES:
                raise ValueError(
                    f'adapter "shape" requires shape, one of {SHAPE_NAMES}; '
                    f"got {self.shape!r}"
                )
            if self.shape_total_events < 1:
                raise ValueError(
                    f'adapter "shape" requires shape_total_events >= 1, '
                    f"got {self.shape_total_events}"
                )
        elif self.shape is not None:
            from repro.serve.load import SHAPE_NAMES

            if self.shape not in SHAPE_NAMES:
                raise ValueError(
                    f"unknown load shape {self.shape!r}; "
                    f"expected one of {SHAPE_NAMES}"
                )
        if self.shape_total_events < 0:
            raise ValueError(
                f"shape_total_events must be non-negative, "
                f"got {self.shape_total_events}"
            )
        if self.num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.on_worker_death not in WORKER_DEATH_POLICIES:
            raise ValueError(
                f"unknown worker-death policy {self.on_worker_death!r}; "
                f"expected one of {WORKER_DEATH_POLICIES}"
            )
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.pipeline_depth < 1:
            raise ValueError(
                f"pipeline_depth must be >= 1, got {self.pipeline_depth}"
            )
        if self.slot_duration < 0:
            raise ValueError(
                f"slot_duration must be non-negative, got {self.slot_duration}"
            )
        if self.snapshot_every < 0:
            raise ValueError(
                f"snapshot_every must be non-negative, got {self.snapshot_every}"
            )
        if self.snapshot_every > 0 and not self.snapshot_path:
            raise ValueError("snapshot_every > 0 requires snapshot_path")
        if self.label_delay < 0:
            raise ValueError(
                f"label_delay must be non-negative, got {self.label_delay}"
            )
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be non-negative, got {self.max_restarts}"
            )
        if self.restart_backoff_s < 0:
            raise ValueError(
                f"restart_backoff_s must be non-negative, "
                f"got {self.restart_backoff_s}"
            )
        if self.restart_backoff_max_s < self.restart_backoff_s:
            raise ValueError(
                f"restart_backoff_max_s ({self.restart_backoff_max_s}) must "
                f"be >= restart_backoff_s ({self.restart_backoff_s})"
            )
        if self.restart_state_every < 1:
            raise ValueError(
                f"restart_state_every must be >= 1, "
                f"got {self.restart_state_every}"
            )
        if self.ingress is not None:
            if not isinstance(self.ingress, dict):
                raise ValueError(
                    f"ingress must be an IngressConfig dict or None, "
                    f"got {type(self.ingress).__name__}"
                )
            if self.adapter == "dataset":
                raise ValueError(
                    'adapter "dataset" cannot run under ingress: its '
                    "pre-drawn indices are coupled to its counts"
                )
            # Parse eagerly so a bad embedded config fails at construction,
            # not mid-run.  Lazy import: repro.serve.__init__ imports this
            # module, and repro.ingress imports repro.serve submodules.
            self.ingress_config()

    def ingress_config(self) -> "object | None":
        """The parsed :class:`~repro.ingress.IngressConfig`, or ``None``."""
        if self.ingress is None:
            return None
        from repro.ingress.config import IngressConfig

        return IngressConfig.from_dict(self.ingress)

    @property
    def effective_label(self) -> str:
        """The run label (defaults to the policy combination)."""
        return (
            self.label
            if self.label is not None
            else f"{self.selection}-{self.trading}"
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready mapping; inverse of :meth:`from_dict`."""
        payload = dataclasses.asdict(self)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ServeConfig":
        """Build a config from a mapping, rejecting unknown keys."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown serve config keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        fields_in = dict(payload)
        scenario = fields_in.get("scenario")
        if isinstance(scenario, dict):
            fields_in["scenario"] = _scenario_from_dict(scenario)
        return cls(**fields_in)

    @classmethod
    def from_file(cls, path: str | Path) -> "ServeConfig":
        """Load a config from a JSON file."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(payload, dict):
            raise ValueError(f"serve config {path} must hold a JSON object")
        return cls.from_dict(payload)

    def with_overrides(self, **overrides: object) -> "ServeConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return dataclasses.replace(self, **overrides)
