"""The unified run specification: :class:`RunSpec`.

Before this module, three call sites each grew their own keyword tail for
"one simulation run" — ``Simulator.from_names(...)``, ``repro.run(...)``,
and ``SweepEngine.run_many(...)`` — and scripts had no portable way to say
*which* run they meant.  A :class:`RunSpec` is that missing noun: a frozen,
typed, JSON-round-trippable value holding the scenario recipe, the policy
names, the seed, the fault plan, and the trace options.  Every runner
accepts one (``Simulator.from_spec``, ``repro.run(spec)``,
``SweepEngine.run_spec``); the legacy keyword tails keep working but emit
:class:`DeprecationWarning`.

    >>> spec = RunSpec(selection="UCB", trading="Ours", seed=3)
    >>> RunSpec.from_json(spec.to_json()) == spec
    True
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

from repro.faults.plan import FaultPlan
from repro.sim.config import CostWeights, ScenarioConfig

__all__ = ["RunSpec"]

#: Format tag written into serialized specs; bump on incompatible changes.
RUNSPEC_FORMAT_VERSION = 1


@dataclass(frozen=True)
class RunSpec:
    """Everything that identifies one simulation run.

    Attributes
    ----------
    scenario:
        Scenario recipe, or ``None`` for the default synthetic setup.
        Runners that accept a pre-built :class:`~repro.sim.scenario.Scenario`
        (for common-random-number reuse) take it as a separate argument and
        ignore this field.
    selection / trading:
        Registered policy-family names (see :mod:`repro.policies`).
    seed:
        Root seed driving policies, workloads, and data draws alike.
    label:
        Result label; defaults to ``"<selection>-<trading>"``.
    label_delay:
        Slots by which ground-truth labels lag inference (paper Step 2.3).
    live_inference:
        Recompute forward passes instead of using memoized loss tables.
    faults:
        Deterministic fault plan (the default empty plan changes nothing).
    trace_output:
        Path for a JSONL event trace, or ``None`` for no tracing.
    trace_edge:
        Restrict the trace to one edge's events (requires ``trace_output``).
    """

    scenario: ScenarioConfig | None = None
    selection: str = "Ours"
    trading: str = "Ours"
    seed: int = 0
    label: str | None = None
    label_delay: int = 0
    live_inference: bool = False
    faults: FaultPlan = field(default_factory=FaultPlan)
    trace_output: str | None = None
    trace_edge: int | None = None

    def __post_init__(self) -> None:
        if self.scenario is not None and not isinstance(self.scenario, ScenarioConfig):
            raise TypeError(
                f"scenario must be a ScenarioConfig or None, got "
                f"{type(self.scenario).__name__}"
            )
        if not isinstance(self.faults, FaultPlan):
            raise TypeError(
                f"faults must be a FaultPlan, got {type(self.faults).__name__}"
            )
        if not self.selection or not self.trading:
            raise ValueError("selection and trading names must be non-empty")
        if self.label_delay < 0:
            raise ValueError(
                f"label_delay must be non-negative, got {self.label_delay}"
            )
        if self.trace_edge is not None and self.trace_output is None:
            raise ValueError("trace_edge requires trace_output")

    @property
    def resolved_label(self) -> str:
        """The label results carry: explicit, or ``selection-trading``."""
        return self.label if self.label is not None else f"{self.selection}-{self.trading}"

    def with_overrides(self, **kwargs) -> "RunSpec":
        """Copy with some fields replaced (sweep helper)."""
        return dataclasses.replace(self, **kwargs)

    def build_scenario(self):
        """Materialize the scenario this spec describes.

        Uses the paper's default synthetic setup when ``scenario`` is
        ``None`` (matching ``repro.run()`` with no arguments).
        """
        from repro.sim.scenario import build_scenario

        config = self.scenario
        if config is None:
            config = ScenarioConfig(dataset="synthetic")
        return build_scenario(config)

    def make_tracer(self):
        """Build the tracer the trace options describe (``None`` if none)."""
        if self.trace_output is None:
            return None
        from repro.obs.sinks import EdgeFilterSink, JsonlSink
        from repro.obs.tracer import Tracer

        sink = JsonlSink(self.trace_output)
        if self.trace_edge is not None:
            sink = EdgeFilterSink(sink, edge=self.trace_edge)
        return Tracer([sink])

    def to_dict(self) -> dict[str, object]:
        """JSON-ready mapping; inverse of :meth:`from_dict`."""
        return {
            "format_version": RUNSPEC_FORMAT_VERSION,
            "scenario": (
                None if self.scenario is None else dataclasses.asdict(self.scenario)
            ),
            "selection": self.selection,
            "trading": self.trading,
            "seed": int(self.seed),
            "label": self.label,
            "label_delay": int(self.label_delay),
            "live_inference": bool(self.live_inference),
            "faults": self.faults.to_dict(),
            "trace_output": self.trace_output,
            "trace_edge": self.trace_edge,
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "RunSpec":
        """Reconstruct a spec from its :meth:`to_dict` form."""
        if not isinstance(payload, dict):
            raise ValueError(f"run spec must be an object, got {payload!r}")
        version = payload.get("format_version", RUNSPEC_FORMAT_VERSION)
        if version != RUNSPEC_FORMAT_VERSION:
            raise ValueError(
                f"unsupported run-spec format_version {version!r} "
                f"(this build reads {RUNSPEC_FORMAT_VERSION})"
            )
        scenario_raw = payload.get("scenario")
        scenario = None
        if scenario_raw is not None:
            if not isinstance(scenario_raw, dict):
                raise ValueError("scenario must be an object or null")
            fields = dict(scenario_raw)
            weights_raw = fields.pop("weights", None)
            if weights_raw is not None:
                fields["weights"] = CostWeights(**weights_raw)
            scenario = ScenarioConfig(**fields)
        faults_raw = payload.get("faults")
        faults = (
            FaultPlan() if faults_raw is None else FaultPlan.from_dict(faults_raw)
        )
        known = {
            "selection",
            "trading",
            "seed",
            "label",
            "label_delay",
            "live_inference",
            "trace_output",
            "trace_edge",
        }
        kwargs = {key: payload[key] for key in known if key in payload}
        unknown = set(payload) - known - {"format_version", "scenario", "faults"}
        if unknown:
            raise ValueError(f"unknown run-spec fields: {sorted(unknown)}")
        return cls(scenario=scenario, faults=faults, **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Parse a spec from a JSON string."""
        return cls.from_dict(json.loads(text))
