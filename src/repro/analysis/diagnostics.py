"""Run diagnostics computed from :class:`SimulationResult` records."""

from __future__ import annotations

import numpy as np

from repro.sim.results import SimulationResult
from repro.utils.mathutils import moving_average

__all__ = [
    "exploration_fraction",
    "switch_rate_series",
    "emission_coverage_ratio",
    "dual_tracking_error",
]


def exploration_fraction(result: SimulationResult) -> float:
    """Share of edge-slots not spent on each edge's most-used model.

    0 for a fixed policy; approaches ``1 - 1/N`` for uniform random play.
    A healthy bandit run starts high and the *overall* fraction lands well
    between the two.
    """
    counts = result.selection_counts()
    most_used = counts.max(axis=1)
    return float(1.0 - most_used.sum() / counts.sum())


def switch_rate_series(result: SimulationResult, window: int = 10) -> np.ndarray:
    """Per-slot model-switch rate across edges, smoothed over ``window``.

    For block-based policies this decays as blocks lengthen (Theorem 1);
    for Random it hovers around ``(N-1)/N``.
    """
    per_slot = result.switches.mean(axis=1)
    return moving_average(per_slot, window)


def emission_coverage_ratio(result: SimulationResult) -> np.ndarray:
    """Running holdings / running emissions — carbon neutrality means >= 1.

    The series summarizes how aggressively a trading policy stays ahead of
    its emissions: Algorithm 2 dips below 1 transiently and recovers.
    """
    emissions = np.cumsum(result.emissions)
    holdings = result.holdings_series()
    return holdings / np.maximum(emissions, 1e-12)


def dual_tracking_error(lambda_history: list[float], prices: np.ndarray) -> float:
    """RMS distance between the dual variable and the posted buy price.

    At Algorithm 2's trading equilibrium the multiplier shadows the market
    price (buying turns on when ``lambda > c``); a small error indicates the
    dual has locked onto the price level.  Computed over the second half of
    the horizon (after the transient).
    """
    lam = np.asarray(lambda_history, dtype=float)
    p = np.asarray(prices, dtype=float)
    if lam.size != p.size:
        raise ValueError(
            f"lambda history ({lam.size}) and prices ({p.size}) misaligned"
        )
    if lam.size == 0:
        raise ValueError("empty history")
    half = lam.size // 2
    return float(np.sqrt(np.mean((lam[half:] - p[half:]) ** 2)))
