"""Analysis utilities: theoretical bounds (Theorems 1-3) and run diagnostics."""

from repro.analysis.bounds import (
    block_count_bound,
    suboptimality_gaps,
    theorem1_bound,
    theorem2_bounds,
    theorem3_bound,
)
from repro.analysis.diagnostics import (
    dual_tracking_error,
    emission_coverage_ratio,
    exploration_fraction,
    switch_rate_series,
)

__all__ = [
    "block_count_bound",
    "suboptimality_gaps",
    "theorem1_bound",
    "theorem2_bounds",
    "theorem3_bound",
    "dual_tracking_error",
    "emission_coverage_ratio",
    "exploration_fraction",
    "switch_rate_series",
]
