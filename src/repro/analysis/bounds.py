"""Evaluable forms of the paper's regret/fit bounds.

The theorems state asymptotic orders; for plotting reference curves next to
measured regret we expose them with explicit leading constants:

* ``block_count_bound`` is exact (from the proof of Theorem 1):
  ``K_i <= N^{1/3} (T/u_i)^{2/3} + 1``.
* ``theorem1_bound`` evaluates
  ``C * ((u N)^{2/3} T^{1/3} + u^2 + ln T) * sum_{n != n*} 1/Delta_n``
  with a calibration constant ``C`` (the proof's absolute constants are
  loose; ``C`` defaults to the value that makes the bound dominate our
  measured regret across the default scenarios with ~5x headroom).
* ``theorem2_bounds`` / ``theorem3_bound`` are the ``O(T^{2/3})`` and
  ``O(T^{1/3} + ln T) + O(T^{2/3})`` envelopes with explicit scales.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.validation import check_finite, check_positive

__all__ = [
    "block_count_bound",
    "suboptimality_gaps",
    "theorem1_bound",
    "theorem2_bounds",
    "theorem3_bound",
]


def block_count_bound(switch_cost: float, num_models: int, horizon: int) -> float:
    """Upper bound on the number of blocks ``K_i`` (proof of Theorem 1)."""
    check_positive(num_models, "num_models")
    check_positive(horizon, "horizon")
    if switch_cost <= 0:
        return float(horizon)  # unit blocks
    return num_models ** (1.0 / 3.0) * (horizon / switch_cost) ** (2.0 / 3.0) + 1.0


def suboptimality_gaps(expected_losses: np.ndarray, latencies: np.ndarray) -> np.ndarray:
    """Per-edge gaps ``Delta_{i,n} = E[l_n + v_{i,n}] - min_n E[l_n + v_{i,n}]``.

    Returns an (I, N) matrix; the best arm's entry is zero on each row.
    """
    losses = check_finite(expected_losses, "expected_losses")
    v = check_finite(latencies, "latencies")
    if v.ndim != 2 or v.shape[1] != losses.size:
        raise ValueError("latencies must be (num_edges, num_models)")
    totals = losses[None, :] + v
    return totals - totals.min(axis=1, keepdims=True)


def theorem1_bound(
    switch_cost: float,
    num_models: int,
    horizon: int,
    gaps: np.ndarray,
    constant: float = 3.0,
) -> float:
    """Evaluable Theorem-1 envelope for one edge.

    ``gaps`` is this edge's row of :func:`suboptimality_gaps`; zero entries
    (the best arm) are excluded from the ``sum 1/Delta`` term, as in the
    theorem statement.
    """
    check_positive(num_models, "num_models")
    check_positive(horizon, "horizon")
    check_positive(constant, "constant")
    if switch_cost < 0:
        raise ValueError(f"switch_cost must be non-negative, got {switch_cost}")
    g = check_finite(gaps, "gaps")
    positive = g[g > 1e-12]
    if positive.size == 0:
        return 0.0  # all arms identical: no regret possible
    inverse_gap_sum = float(np.sum(1.0 / positive))
    growth = (
        (max(switch_cost, 1e-9) * num_models) ** (2.0 / 3.0) * horizon ** (1.0 / 3.0)
        + switch_cost**2
        + math.log(max(horizon, 2))
    )
    return constant * growth * inverse_gap_sum


def theorem2_bounds(horizon: int, scale: float = 1.0) -> tuple[float, float]:
    """``(regret, fit)`` envelopes for P2: both ``scale * T^{2/3}``."""
    check_positive(horizon, "horizon")
    check_positive(scale, "scale")
    envelope = scale * horizon ** (2.0 / 3.0)
    return envelope, envelope


def theorem3_bound(
    switch_costs: np.ndarray,
    num_models: int,
    horizon: int,
    gaps: np.ndarray,
    trading_scale: float = 1.0,
    constant: float = 3.0,
) -> float:
    """Whole-problem (P0) regret envelope: per-edge Theorem-1 terms plus the
    Theorem-2 ``O(T^{2/3})`` trading term (the ``Omega_1`` constant is not
    representable without solving the instance and is omitted)."""
    u = check_finite(switch_costs, "switch_costs")
    g = check_finite(gaps, "gaps")
    if g.shape != (u.size, num_models):
        raise ValueError("gaps must be (num_edges, num_models)")
    selection_term = sum(
        theorem1_bound(float(u[i]), num_models, horizon, g[i], constant=constant)
        for i in range(u.size)
    )
    trading_term, _ = theorem2_bounds(horizon, scale=trading_scale)
    return selection_term + trading_term
