"""Small numeric helpers shared across the library."""

from __future__ import annotations

import numpy as np

__all__ = [
    "clip_to_simplex",
    "cummax",
    "haversine_km",
    "moving_average",
    "normalize",
    "positive_part",
    "softmax",
]

_EARTH_RADIUS_KM = 6371.0088


def positive_part(x: float | np.ndarray) -> float | np.ndarray:
    """Elementwise ``max(x, 0)`` — the paper's ``[.]^+`` operator."""
    if np.isscalar(x):
        return max(float(x), 0.0)
    return np.maximum(np.asarray(x, dtype=float), 0.0)


def normalize(x: np.ndarray) -> np.ndarray:
    """Scale a non-negative vector to sum to one (uniform if all-zero)."""
    arr = np.asarray(x, dtype=float)
    total = arr.sum()
    if total <= 0:
        return np.full_like(arr, 1.0 / max(arr.size, 1))
    return arr / total

def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    z = np.asarray(logits, dtype=float)
    z = z - np.max(z, axis=axis, keepdims=True)
    expz = np.exp(z)
    return expz / np.sum(expz, axis=axis, keepdims=True)


def clip_to_simplex(v: np.ndarray) -> np.ndarray:
    """Euclidean projection of a vector onto the probability simplex.

    Implements the sort-based algorithm of Held, Wolfe & Crowder (1974).
    """
    arr = np.asarray(v, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"expected a vector, got shape {arr.shape}")
    n = arr.size
    if n == 0:
        raise ValueError("cannot project an empty vector")
    u = np.sort(arr)[::-1]
    css = np.cumsum(u) - 1.0
    ks = np.arange(1, n + 1)
    cond = u - css / ks > 0
    rho = int(np.nonzero(cond)[0][-1]) + 1
    theta = css[rho - 1] / rho
    return np.maximum(arr - theta, 0.0)


def cummax(x: np.ndarray) -> np.ndarray:
    """Running maximum of a 1-D array."""
    return np.maximum.accumulate(np.asarray(x, dtype=float))


def moving_average(x: np.ndarray, window: int) -> np.ndarray:
    """Trailing moving average with a ramp-up (same length as input)."""
    arr = np.asarray(x, dtype=float)
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if window == 1 or arr.size == 0:
        return arr.copy()
    csum = np.cumsum(arr)
    out = np.empty_like(arr)
    for i in range(arr.size):
        lo = max(0, i - window + 1)
        total = csum[i] - (csum[lo - 1] if lo > 0 else 0.0)
        out[i] = total / (i - lo + 1)
    return out


def haversine_km(
    lat1: float | np.ndarray,
    lon1: float | np.ndarray,
    lat2: float | np.ndarray,
    lon2: float | np.ndarray,
) -> float | np.ndarray:
    """Great-circle distance between points given in degrees, in kilometres."""
    phi1, phi2 = np.radians(lat1), np.radians(lat2)
    dphi = phi2 - phi1
    dlam = np.radians(np.asarray(lon2, dtype=float) - np.asarray(lon1, dtype=float))
    a = np.sin(dphi / 2.0) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlam / 2.0) ** 2
    distance = 2.0 * _EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))
    if np.isscalar(lat1) and np.isscalar(lat2) and np.isscalar(lon1) and np.isscalar(lon2):
        return float(distance)
    return distance
