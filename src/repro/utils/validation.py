"""Argument-validation helpers raising uniform, descriptive errors."""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "check_finite",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
    "check_probability_vector",
    "check_simplex",
]


def check_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value > 0``; return the value."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def check_nonnegative(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value >= 0``; return the value."""
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return float(value)


def check_in_range(
    value: float, name: str, low: float, high: float, *, inclusive: bool = True
) -> float:
    """Raise ``ValueError`` unless ``value`` lies in ``[low, high]`` (or open)."""
    ok = low <= value <= high if inclusive else low < value < high
    if not np.isfinite(value) or not ok:
        brackets = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must lie in {brackets[0]}{low}, {high}{brackets[1]}, got {value!r}"
        )
    return float(value)


def check_finite(array: Any, name: str) -> np.ndarray:
    """Coerce to ``ndarray`` and raise ``ValueError`` on NaN/inf entries."""
    arr = np.asarray(array, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    return arr


def check_probability_vector(p: Any, name: str, *, atol: float = 1e-8) -> np.ndarray:
    """Validate that ``p`` is a probability vector (non-negative, sums to 1)."""
    arr = check_finite(p, name)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if np.any(arr < -atol):
        raise ValueError(f"{name} has negative entries: min={arr.min()!r}")
    total = float(arr.sum())
    if abs(total - 1.0) > max(atol, 1e-6):
        raise ValueError(f"{name} must sum to 1, got {total!r}")
    return np.clip(arr, 0.0, None) / max(total, 1e-300)


def check_simplex(p: np.ndarray, name: str = "p", *, atol: float = 1e-9) -> np.ndarray:
    """Runtime contract: assert ``p`` already lies on the probability simplex.

    Unlike :func:`check_probability_vector` (which sanitizes caller *input*,
    coercing and renormalizing), this is a postcondition check for
    distributions *we computed* — Algorithm 1's Tsallis-OMD solutions must
    land on the simplex to machine precision, so nothing is repaired: the
    array is returned unchanged, or an ``ArithmeticError`` names the broken
    invariant.
    """
    arr = np.asarray(p, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ArithmeticError(
            f"{name} must be a non-empty probability vector, got shape {arr.shape}"
        )
    if not np.all(np.isfinite(arr)):
        raise ArithmeticError(f"{name} contains non-finite probabilities")
    low = float(arr.min())
    if low < -atol:
        raise ArithmeticError(f"{name} has negative probability mass: min={low!r}")
    total = float(arr.sum())
    if abs(total - 1.0) > max(atol * arr.size, atol):
        raise ArithmeticError(f"{name} must sum to 1, got {total!r}")
    return arr
