"""Deterministic random-number streams.

Every stochastic component of the library (data streams, traces, bandit
sampling, trading baselines) draws from its own named ``numpy.random.Generator``
stream derived from a single root seed.  Two runs with the same root seed are
bit-for-bit identical, and adding a new consumer of randomness does not
perturb the streams of existing consumers (streams are keyed by name, not by
creation order).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngFactory", "spawn_generator", "thinning_stream"]


def _stable_hash(text: str) -> int:
    """Map a string to a stable 64-bit integer (independent of PYTHONHASHSEED)."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def spawn_generator(seed: int, name: str) -> np.random.Generator:
    """Create a named generator derived from ``seed``.

    The same ``(seed, name)`` pair always yields an identical stream.
    """
    return np.random.default_rng(np.random.SeedSequence([seed, _stable_hash(name)]))


def thinning_stream(seed: int, edge: int) -> np.random.Generator:
    """The named stream that splits edge ``edge``'s slot counts into requests.

    Request-level ingress (``repro.ingress``) *thins* the slot-granular
    arrival counts into per-SLA-class requests.  The split draws from this
    dedicated stream — keyed ``ingress-thin-<edge>`` — so enabling ingress
    never perturbs the base arrival/data streams (``arrivals-<edge>``,
    ``data-<edge>``): slot totals, and therefore every kernel input, stay
    bit-identical with deferral disabled.
    """
    return spawn_generator(seed, f"ingress-thin-{edge}")


class RngFactory:
    """Factory handing out independent, named random streams.

    Parameters
    ----------
    seed:
        Root seed.  All streams produced by this factory are a pure function
        of ``(seed, stream name)``.

    Examples
    --------
    >>> factory = RngFactory(seed=7)
    >>> a = factory.get("workload")
    >>> b = factory.get("workload")
    >>> a is b
    True
    >>> float(a.random()) == float(RngFactory(seed=7).get("workload").random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed this factory was constructed with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = spawn_generator(self._seed, name)
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name``, resetting its stream."""
        self._streams[name] = spawn_generator(self._seed, name)
        return self._streams[name]

    def child(self, name: str) -> "RngFactory":
        """Derive a sub-factory whose streams are independent of this one's."""
        return RngFactory(seed=_stable_hash(f"{self._seed}:{name}") % (2**63))
