"""Shared low-level utilities: seeded RNG streams, validation, math helpers."""

from repro.utils.rng import RngFactory, spawn_generator
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability_vector,
    check_simplex,
)
from repro.utils.mathutils import (
    clip_to_simplex,
    cummax,
    haversine_km,
    moving_average,
    normalize,
    positive_part,
    softmax,
)

__all__ = [
    "RngFactory",
    "spawn_generator",
    "check_finite",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
    "check_probability_vector",
    "check_simplex",
    "clip_to_simplex",
    "cummax",
    "haversine_km",
    "moving_average",
    "normalize",
    "positive_part",
    "softmax",
]
