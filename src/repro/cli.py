"""Command-line interface.

Examples::

    python -m repro.cli simulate --selection Ours --trading Ours --edges 10
    python -m repro.cli simulate --selection UCB --trading LY --seed 3 \
        --save-json run.json
    python -m repro.cli trace --selection Ours --trading Ours > events.jsonl
    python -m repro.cli trace --trace-output run.jsonl --summary
    python -m repro.cli trace --edge 0 --summary --trace-output edge0.jsonl
    python -m repro.cli trace --replay run.jsonl
    python -m repro.cli trace --replay parent.jsonl shard0.jsonl shard1.jsonl
    python -m repro.cli serve --edges 4 --horizon 80 --trace-output serve.jsonl
    python -m repro.cli serve --config serve.json --snapshot-every 16 \
        --snapshot-path state.pkl
    python -m repro.cli serve --resume state.pkl
    python -m repro.cli serve --wall-clock --slot-duration 0.05 \
        --backpressure shed --health-port 8080
    python -m repro.cli serve --edges 64 --workers 4 --wall-clock \
        --backpressure shed
    python -m repro.cli soak --smoke
    python -m repro.cli soak --shape spike --edges 64 --workers 4
    python -m repro.cli zoo --dataset mnist
    python -m repro.cli experiment fig10 fig11 --full
    python -m repro.cli experiment fig03 fig04 --workers 4 --cache .repro_cache
    python -m repro.cli experiment fig06 --faults plan.json --checkpoint sweep.jsonl
    python -m repro.cli faults template > plan.json
    python -m repro.cli faults validate plan.json
    python -m repro.cli faults run plan.json --selection Ours --trading Ours
    python -m repro.cli cache prune --max-age-days 30 --max-size-mb 512 --dry-run
    python -m repro.cli bench --smoke --check
    python -m repro.cli bench simulator --output-dir bench-out
    python -m repro.cli lint src/repro --format json
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    SELECTION_NAMES,
    TRADING_NAMES,
    run_combo,
    run_offline,
)
from repro.metrics import summarize_run
from repro.sim import ScenarioConfig, build_scenario

__all__ = ["build_parser", "main"]


def _add_scenario_options(parser: argparse.ArgumentParser) -> None:
    """Scenario/run options shared by ``simulate`` and ``trace``."""
    parser.add_argument("--dataset", choices=("synthetic", "mnist", "cifar10"),
                        default="synthetic")
    parser.add_argument("--edges", type=int, default=10)
    parser.add_argument("--horizon", type=int, default=160)
    parser.add_argument("--cap", type=float, default=500.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--switching-weight", type=float, default=1.0)


#: The unified execution-options group shared by ``experiment``, ``serve``,
#: and ``bench`` (and ``trace`` for the trace-output member).  One canonical
#: spelling and help string per flag — commands attach the members that
#: apply to them via :func:`_add_shared_run_options`, so the same concept is
#: never spelled two ways on two subcommands.
_SHARED_RUN_OPTIONS: dict[str, tuple[tuple[str, ...], dict]] = {
    "workers": (("--workers",),
                dict(type=int, default=1, metavar="N",
                     help="process-pool size for sweep execution "
                          "(1 = serial)")),
    "cache": (("--cache",),
              dict(metavar="DIR", default=None,
                   help="result-cache directory (default: .repro_cache)")),
    "no-cache": (("--no-cache",),
                 dict(action="store_true",
                      help="disable the result cache entirely")),
    "faults": (("--faults",),
               dict(metavar="PLAN.json", default=None,
                    help="fault plan injected into the run "
                         "(see `repro faults template`)")),
    "trace-output": (("--trace-output",),
                     dict(metavar="LOG.jsonl", default=None,
                          help="stream structured events to this JSONL "
                               "file")),
}


def _add_shared_run_options(
    parser: argparse.ArgumentParser, *names: str
) -> None:
    """Attach the named members of the shared execution-options group."""
    group = parser.add_argument_group("shared run options")
    for name in names:
        flags, kwargs = _SHARED_RUN_OPTIONS[name]
        group.add_argument(*flags, **kwargs)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Carbon-neutralizing edge AI inference (ICDCS 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one policy combination")
    sim.add_argument("--selection", choices=SELECTION_NAMES, default="Ours")
    sim.add_argument("--trading", choices=TRADING_NAMES + ("Offline",), default="Ours")
    _add_scenario_options(sim)
    sim.add_argument("--save-json", metavar="PATH", default=None,
                     help="write the full per-slot result as JSON")
    sim.add_argument("--save-npz", metavar="PATH", default=None,
                     help="write the full per-slot result as compressed NPZ")

    trace = sub.add_parser(
        "trace",
        help="run one combination and emit its structured event log (JSONL)",
    )
    trace.add_argument("--selection", choices=SELECTION_NAMES, default="Ours")
    trace.add_argument("--trading", choices=TRADING_NAMES, default="Ours")
    _add_scenario_options(trace)
    _add_shared_run_options(trace, "trace-output")
    trace.add_argument("--output", dest="legacy_output", metavar="PATH",
                       default=None,
                       help="deprecated alias of --trace-output")
    trace.add_argument("--summary", action="store_true",
                       help="print per-type event counts after the run")
    trace.add_argument("--edge", type=int, default=None, metavar="I",
                       help="keep only per-edge events (model switches, "
                            "block boundaries) of edge I")
    trace.add_argument("--replay", metavar="LOG.jsonl", nargs="+", default=None,
                       help="re-aggregate recorded trace(s) into summary "
                            "tables instead of running anything; several "
                            "logs (e.g. a sharded run's parent + per-shard "
                            "traces) merge deterministically by slot")

    serve = sub.add_parser(
        "serve",
        help="run the async streaming edge-fleet runtime (repro.serve)",
    )
    serve.add_argument("--config", metavar="CONFIG.json", default=None,
                       help="serve configuration file (scenario flags are "
                            "ignored when given; explicit serve flags still "
                            "override)")
    serve.add_argument("--selection", choices=SELECTION_NAMES, default=None)
    serve.add_argument("--trading", choices=TRADING_NAMES, default=None)
    _add_scenario_options(serve)
    serve.add_argument("--label", default=None,
                       help="run label (default: '<selection>-<trading>')")
    serve.add_argument("--label-delay", type=int, default=None, metavar="D",
                       help="deliver bandit feedback D slots late")
    serve.add_argument("--adapter",
                       choices=("poisson", "replay", "dataset", "shape"),
                       default=None,
                       help="stream adapter feeding the edges "
                            "(default: poisson)")
    serve.add_argument("--replay-log", metavar="LOG.jsonl", default=None,
                       help="trace whose arrival events drive the replay "
                            "adapter")
    serve.add_argument("--shape", choices=("constant", "sawtooth", "spike",
                                           "step"),
                       default=None,
                       help="load shape for the shape adapter")
    serve.add_argument("--shape-events", type=int, default=None, metavar="N",
                       help="total events the shape grid carries")
    serve.add_argument("--shape-seed", type=int, default=None, metavar="S",
                       help="seed of the shape grid's jitter stream")
    clock = serve.add_mutually_exclusive_group()
    clock.add_argument("--virtual-clock", dest="clock", action="store_true",
                       default=None,
                       help="deterministic lockstep clock, bit-identical "
                            "to the simulator (default)")
    clock.add_argument("--wall-clock", dest="clock", action="store_false",
                       help="real-time pacing with pipelined slots")
    serve.add_argument("--slot-duration", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock slot length (0 = free-running)")
    serve.add_argument("--queue-capacity", type=int, default=None, metavar="N",
                       help="per-edge queue bound in events (default: 1024)")
    serve.add_argument("--backpressure", choices=("block", "shed"),
                       default=None,
                       help="full-queue policy; shed requires --wall-clock")
    serve.add_argument("--pipeline-depth", type=int, default=None, metavar="K",
                       help="wall-clock slots in flight at once (default: 8)")
    serve.add_argument("--snapshot-every", type=int, default=None, metavar="S",
                       help="persist full controller state every S slots")
    serve.add_argument("--snapshot-path", metavar="PATH", default=None,
                       help="where snapshots are written (atomic replace)")
    serve.add_argument("--resume", metavar="SNAPSHOT", default=None,
                       help="resume a killed run from its snapshot file "
                            "(ignores --config and scenario flags)")
    _add_shared_run_options(serve, "faults", "trace-output")
    serve.add_argument("--health-port", type=int, default=None, metavar="PORT",
                       help="serve /healthz and /metrics JSON on this port "
                            "while running (0 = ephemeral)")
    serve.add_argument("--max-slots", type=int, default=None, metavar="K",
                       help="stop after K completed slots (resume later "
                            "from the snapshot)")
    serve.add_argument("--workers", dest="serve_workers", type=int,
                       default=None, metavar="W",
                       help="shard the edge tier across W worker processes "
                            "(1 = in-process runtime; default: 1)")
    serve.add_argument("--on-worker-death",
                       choices=("fail", "degrade", "restart"),
                       default=None,
                       help="sharded runs: raise on a dead worker (fail, "
                            "default), mark its edges offline and finish "
                            "the horizon (degrade), or respawn it from its "
                            "last checkpoint with backoff (restart)")
    serve.add_argument("--max-restarts", type=int, default=None, metavar="N",
                       help="restart budget per worker before it degrades "
                            "(default: 3)")
    serve.add_argument("--reconfig", metavar="PLAN.json", default=None,
                       help="apply a live reconfiguration plan "
                            "(add_edge/remove_edge/rebalance ops at slot "
                            "barriers; forces the sharded runtime)")
    serve.add_argument("--chaos", metavar="PLAN.json", default=None,
                       help="inject a deterministic chaos plan (worker "
                            "kills, stalls, transport drops; forces the "
                            "sharded runtime)")
    serve.add_argument("--ingress", nargs="?", const="default", default=None,
                       metavar="CONFIG.json",
                       help="mount the request-level ingress tier (SLA "
                            "classes, admission, deadline deferral); with "
                            "no argument uses the default config, else "
                            "loads an IngressConfig JSON file")

    soak = sub.add_parser(
        "soak",
        help="soak the sharded edge tier under deterministic load shapes",
    )
    from repro.serve.cli import add_arguments as add_soak_arguments

    add_soak_arguments(soak)

    zoo = sub.add_parser("zoo", help="train and describe a model zoo")
    zoo.add_argument("--dataset", choices=("mnist", "cifar10"), default="mnist")
    zoo.add_argument("--zoo-seed", type=int, default=1234)
    zoo.add_argument("--n-train", type=int, default=2000)
    zoo.add_argument("--n-test", type=int, default=4000)
    zoo.add_argument("--bits", type=int, default=None,
                     help="also show int-quantized variants at this bit width")

    exp = sub.add_parser("experiment", help="run paper-figure experiments")
    exp.add_argument("figures", nargs="*", help="e.g. fig10 fig11 (default: all)")
    exp.add_argument("--full", action="store_true", help="paper-scale settings")
    _add_shared_run_options(exp, "workers", "cache", "no-cache", "faults")
    exp.add_argument("--checkpoint", metavar="PATH", default=None,
                     help="sweep-checkpoint journal for crash-safe resume")

    bench = sub.add_parser(
        "bench",
        help="run the measured perf suites and gate against BENCH baselines",
    )
    from repro.bench.cli import add_arguments as add_bench_arguments

    add_bench_arguments(bench)
    _add_shared_run_options(bench, "faults", "trace-output")

    faults = sub.add_parser(
        "faults", help="author, validate, and exercise fault-injection plans"
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)
    tmpl = faults_sub.add_parser(
        "template", help="print an example fault plan covering every fault kind"
    )
    tmpl.add_argument("--output", metavar="PATH", default=None,
                      help="write the plan here instead of stdout")
    val = faults_sub.add_parser(
        "validate", help="parse a plan file and report its specs"
    )
    val.add_argument("plan", metavar="PLAN.json")
    frun = faults_sub.add_parser(
        "run", help="run one policy combination under a fault plan"
    )
    frun.add_argument("plan", metavar="PLAN.json")
    frun.add_argument("--selection", choices=SELECTION_NAMES, default="Ours")
    frun.add_argument("--trading", choices=TRADING_NAMES, default="Ours")
    _add_scenario_options(frun)

    cache = sub.add_parser("cache", help="manage the on-disk sweep result cache")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    prune = cache_sub.add_parser(
        "prune", help="evict cache entries by age and/or total size"
    )
    prune.add_argument("--dir", dest="directory", metavar="DIR",
                       default=".repro_cache",
                       help="cache directory (default: .repro_cache)")
    prune.add_argument("--max-age-days", type=float, default=None, metavar="D",
                       help="evict entries older than D days")
    prune.add_argument("--max-size-mb", type=float, default=None, metavar="M",
                       help="then evict oldest entries until the cache fits M MiB")
    prune.add_argument("--dry-run", action="store_true",
                       help="report what would be evicted without deleting")

    lint = sub.add_parser(
        "lint", help="run the reprolint static-analysis gate (exit 1 on findings)"
    )
    lint.add_argument("paths", nargs="*",
                      help="files/directories (default: the repro package)")
    lint.add_argument("--format", choices=("text", "json", "sarif"), default="text")
    lint.add_argument("--select", metavar="CODES", default=None,
                      help="comma-separated rule codes to run (default: all)")
    lint.add_argument("--list-rules", action="store_true",
                      help="list registered rule codes and exit")
    lint.add_argument("--baseline", metavar="FILE", default=None,
                      help="gate only on findings absent from this baseline")
    lint.add_argument("--write-baseline", metavar="FILE", default=None,
                      help="record current findings to FILE and exit 0")

    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = ScenarioConfig(
        dataset=args.dataset,
        num_edges=args.edges,
        horizon=args.horizon,
        carbon_cap_kg=args.cap,
        switching_weight=args.switching_weight,
    )
    scenario = build_scenario(config)
    if args.trading == "Offline":
        result = run_offline(scenario, args.seed)
    else:
        result = run_combo(scenario, args.selection, args.trading, args.seed)
    summary = summarize_run(result, config.weights)
    rows = [[key, value] for key, value in summary.as_dict().items()]
    print(format_table(["metric", "value"], rows, title=f"Run: {result.label}"))
    if args.save_json:
        from repro.sim.io import save_result_json

        print(f"saved JSON -> {save_result_json(result, args.save_json)}")
    if args.save_npz:
        from repro.sim.io import save_result_npz

        print(f"saved NPZ  -> {save_result_npz(result, args.save_npz)}")
    return 0


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    from repro.obs import summarize_traces

    summary = summarize_traces(args.replay)
    source = ", ".join(args.replay)
    overview = [
        ["events", summary.events_total],
        ["slots seen", summary.slots_seen],
        ["horizon", summary.horizon],
        ["bought kg", round(summary.total_bought, 6)],
        ["sold kg", round(summary.total_sold, 6)],
        ["trading cost", round(summary.trading_cost, 6)],
        ["trades rejected", summary.trades_rejected],
        ["snapshots", summary.snapshots],
        ["final cum. emissions kg", round(summary.final_cumulative_kg, 6)],
        ["final holdings kg", round(summary.final_holdings_kg, 6)],
        ["final violation kg", round(summary.final_violation_kg, 6)],
    ]
    if summary.final_dual is not None:
        overview.append(["final dual", round(summary.final_dual, 6)])
    print(format_table(["metric", "value"], overview,
                       title=f"Trace replay: {source}"))
    print(format_table(["event type", "count"], summary.event_rows(),
                       title="Events by type"))
    if summary.edges:
        print(format_table(
            ["edge", "arrivals", "switches", "blocks", "fb lost",
             "retries", "shed"],
            summary.edge_rows(),
            title="Per-edge aggregates",
        ))
    if summary.faults_by_kind:
        rows = [[kind, count]
                for kind, count in sorted(summary.faults_by_kind.items())]
        print(format_table(["fault kind", "events"], rows,
                           title="Injected faults"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import EdgeFilterSink, JsonlSink, Tracer

    if args.replay is not None:
        return _cmd_trace_replay(args)

    if args.legacy_output is not None:
        print("repro trace --output is deprecated; use --trace-output",
              file=sys.stderr)
        if args.trace_output is None:
            args.trace_output = args.legacy_output

    config = ScenarioConfig(
        dataset=args.dataset,
        num_edges=args.edges,
        horizon=args.horizon,
        carbon_cap_kg=args.cap,
        switching_weight=args.switching_weight,
    )
    scenario = build_scenario(config)
    sink = JsonlSink(args.trace_output if args.trace_output else sys.stdout)
    tracer_sink = sink if args.edge is None else EdgeFilterSink(sink, args.edge)
    tracer = Tracer([tracer_sink])
    try:
        result = run_combo(
            scenario, args.selection, args.trading, args.seed, tracer=tracer
        )
        tracer.close()
    except BrokenPipeError:
        # Downstream consumer (e.g. ``repro trace | head``) closed the
        # stream; that is a normal way to end a streaming run.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    if args.edge is None:
        counts = tracer.event_counts()
    else:
        counts = tracer_sink.forwarded_counts
    # When streaming, stdout is the event log — keep the summary off it.
    report = sys.stdout if args.trace_output else sys.stderr
    scope = "" if args.edge is None else f" (edge {args.edge})"
    print(
        f"traced {result.label}: {sink.events_written} events{scope}"
        + (f" -> {args.trace_output}" if args.trace_output else ""),
        file=report,
    )
    if args.summary:
        for name in sorted(counts):
            print(f"  {name:<16} {counts[name]}", file=report)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs import AsyncQueueSink, JsonlSink, Tracer
    from repro.serve import (
        ServeConfig,
        make_runtime,
        runtime_from_snapshot,
        shard_edges,
    )

    plan = None
    if args.faults is not None:
        from repro.faults import load_plan

        plan = load_plan(args.faults)

    tracer = Tracer()
    sink = None
    if args.trace_output is not None:
        sink = AsyncQueueSink(JsonlSink(args.trace_output))
        tracer.add_sink(sink)

    if args.resume is not None:
        runtime = runtime_from_snapshot(
            args.resume, tracer=tracer, faults=plan
        )
        print(f"resuming {runtime.label} from {args.resume} "
              f"at slot {runtime.completed_slot + 1}/{runtime.horizon}")
    else:
        if args.config is not None:
            config = ServeConfig.from_file(args.config)
        else:
            config = ServeConfig(
                scenario=ScenarioConfig(
                    dataset=args.dataset,
                    num_edges=args.edges,
                    horizon=args.horizon,
                    carbon_cap_kg=args.cap,
                    switching_weight=args.switching_weight,
                ),
                seed=args.seed,
            )
        overrides = {
            name: value
            for name, value in (
                ("selection", args.selection),
                ("trading", args.trading),
                ("label", args.label),
                ("label_delay", args.label_delay),
                ("adapter", args.adapter),
                ("replay_log", args.replay_log),
                ("slot_duration", args.slot_duration),
                ("queue_capacity", args.queue_capacity),
                ("backpressure", args.backpressure),
                ("pipeline_depth", args.pipeline_depth),
                ("snapshot_every", args.snapshot_every),
                ("snapshot_path", args.snapshot_path),
                ("health_port", args.health_port),
                ("shape", args.shape),
                ("shape_total_events", args.shape_events),
                ("shape_seed", args.shape_seed),
                ("num_workers", args.serve_workers),
                ("on_worker_death", args.on_worker_death),
                ("max_restarts", args.max_restarts),
            )
            if value is not None
        }
        if args.clock is not None:
            overrides["virtual_clock"] = args.clock
        if args.ingress is not None:
            from repro.ingress.config import IngressConfig

            ingress_config = (
                IngressConfig()
                if args.ingress == "default"
                else IngressConfig.from_file(args.ingress)
            )
            overrides["ingress"] = ingress_config.to_dict()
        if overrides:
            config = config.with_overrides(**overrides)
        shard_kwargs = {}
        if args.chaos is not None:
            from repro.serve import load_chaos_plan

            shard_kwargs["chaos"] = load_chaos_plan(args.chaos)
        if args.reconfig is not None:
            from repro.serve import load_reconfig_plan

            shard_kwargs["reconfig"] = load_reconfig_plan(args.reconfig)
        if config.num_workers > 1 and args.trace_output is not None:
            # One log per worker shard beside the parent's; merge them back
            # with ``repro trace --replay out.jsonl out.jsonl.shard*``.
            shards = shard_edges(config.scenario.num_edges, config.num_workers)
            shard_kwargs["shard_trace_paths"] = [
                f"{args.trace_output}.shard{w}" for w in range(len(shards))
            ]
        runtime = make_runtime(config, tracer=tracer, faults=plan, **shard_kwargs)

    result = runtime.run(max_slots=args.max_slots)
    tracer.close()

    if result is not None:
        summary = summarize_run(result, runtime.scenario.config.weights)
        rows = [[key, value] for key, value in summary.as_dict().items()]
        print(format_table(["metric", "value"], rows,
                           title=f"Served: {result.label}"))
    else:
        print(f"served {runtime.completed_slot + 1}/{runtime.horizon} slots "
              f"of {runtime.label}; resume with --resume "
              f"{runtime.config.snapshot_path}")
    counters = tracer.metrics_snapshot()["counters"]
    counter_rows = [
        [name.removeprefix("serve/"), int(value)]
        for name, value in sorted(counters.items())
        if name.startswith("serve/")
    ]
    print(format_table(["serve counter", "value"], counter_rows,
                       title="Serve counters"))
    ingress_rows = [
        [name.removeprefix("ingress/"), int(value)]
        for name, value in sorted(counters.items())
        if name.startswith("ingress/")
    ]
    if ingress_rows:
        print(format_table(["ingress counter", "value"], ingress_rows,
                           title="Ingress counters"))
    if sink is not None:
        print(f"traced {sink.events_written} events -> {args.trace_output}"
              + (f" ({sink.dropped} dropped)" if sink.dropped else ""))
    return 0


def _cmd_zoo(args: argparse.Namespace) -> int:
    from repro.sim.zoo import quantized_trained_profiles, trained_profiles

    kwargs = dict(zoo_seed=args.zoo_seed, n_train=args.n_train, n_test=args.n_test)
    profiles = trained_profiles(args.dataset, **kwargs)
    rows = [
        [p.name, p.size_bytes / 1e3, p.expected_loss, p.loss_std, p.accuracy]
        for p in profiles
    ]
    print(
        format_table(
            ["model", "size KB", "E[loss]", "loss std", "accuracy"],
            rows,
            title=f"{args.dataset} zoo (seed {args.zoo_seed})",
        )
    )
    if args.bits is not None:
        quantized = quantized_trained_profiles(
            args.dataset, bits=args.bits, **kwargs
        )
        rows = [
            [p.name, p.size_bytes / 1e3, p.expected_loss, p.loss_std, p.accuracy]
            for p in quantized
        ]
        print()
        print(
            format_table(
                ["model", "size KB", "E[loss]", "loss std", "accuracy"],
                rows,
                title=f"int{args.bits} variants",
            )
        )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.run_all import main as run_all_main

    argv = list(args.figures)
    if args.full:
        argv.append("--full")
    argv += ["--workers", str(args.workers)]
    if args.cache is not None:
        argv += ["--cache", args.cache]
    if args.no_cache:
        argv.append("--no-cache")
    if args.faults is not None:
        argv += ["--faults", args.faults]
    if args.checkpoint is not None:
        argv += ["--checkpoint", args.checkpoint]
    run_all_main(argv)
    return 0


def _template_plan():
    """A representative plan exercising every registered fault kind."""
    from repro.faults import (
        DownloadFailure,
        EdgeOutage,
        FaultPlan,
        FeedbackLoss,
        GilbertElliottLoss,
        MarketOutage,
        TradeRejection,
    )

    return FaultPlan((
        EdgeOutage(edge=0, start=20, end=30),
        FeedbackLoss(probability=0.1),
        GilbertElliottLoss(p_bad=0.1, p_good=0.3, loss_bad=0.9, edge=1),
        DownloadFailure(probability=0.2, max_backoff=8),
        MarketOutage(start=40, end=60),
        TradeRejection(probability=0.05),
    ))


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults import load_plan

    if args.faults_command == "template":
        text = _template_plan().to_json()
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote template plan -> {args.output}")
        else:
            print(text)
        return 0

    plan = load_plan(args.plan)
    if args.faults_command == "validate":
        kinds: dict[str, int] = {}
        for spec in plan.specs:
            kinds[spec.kind] = kinds.get(spec.kind, 0) + 1
        rows = [[kind, count] for kind, count in sorted(kinds.items())]
        print(format_table(["fault kind", "specs"],
                           rows or [["(empty plan)", 0]],
                           title=f"{args.plan}: {len(plan)} spec(s), valid"))
        return 0

    # faults run: one combination under the plan, with fault-event counts.
    from repro.obs import Tracer

    config = ScenarioConfig(
        dataset=args.dataset,
        num_edges=args.edges,
        horizon=args.horizon,
        carbon_cap_kg=args.cap,
        switching_weight=args.switching_weight,
    )
    scenario = build_scenario(config)
    tracer = Tracer()
    result = run_combo(
        scenario, args.selection, args.trading, args.seed,
        tracer=tracer, faults=plan,
    )
    summary = summarize_run(result, config.weights)
    rows = [[key, value] for key, value in summary.as_dict().items()]
    print(format_table(["metric", "value"], rows,
                       title=f"Run: {result.label} (faulted)"))
    counts = tracer.event_counts()
    fault_rows = [
        [name, counts.get(name, 0)]
        for name in ("fault_injected", "feedback_lost", "retry", "trade_rejected")
    ]
    print(format_table(["fault event", "count"], fault_rows, title="Fault events"))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.cli import run as bench_run

    return bench_run(args)


def _cmd_soak(args: argparse.Namespace) -> int:
    from repro.serve.cli import run as soak_run

    return soak_run(args)


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.experiments.cache import ResultCache

    if args.max_age_days is None and args.max_size_mb is None:
        print("cache prune: nothing to do "
              "(pass --max-age-days and/or --max-size-mb)", file=sys.stderr)
        return 2
    cache = ResultCache(args.directory)
    report = cache.prune(
        max_age_seconds=(None if args.max_age_days is None
                         else args.max_age_days * 86400.0),
        max_size_bytes=(None if args.max_size_mb is None
                        else int(args.max_size_mb * 1024 * 1024)),
        dry_run=args.dry_run,
    )
    verb = "would remove" if report.dry_run else "removed"
    print(f"cache prune ({cache.directory}): examined {report.examined}, "
          f"{verb} {report.removed} ({report.removed_bytes} bytes), "
          f"kept {report.kept} ({report.kept_bytes} bytes)")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main

    argv: list[str] = list(args.paths)
    argv += ["--format", args.format]
    if args.select:
        argv += ["--select", args.select]
    if args.list_rules:
        argv.append("--list-rules")
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.write_baseline:
        argv += ["--write-baseline", args.write_baseline]
    return lint_main(argv)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "soak":
        return _cmd_soak(args)
    if args.command == "zoo":
        return _cmd_zoo(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "lint":
        return _cmd_lint(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
