"""Command-line interface.

Examples::

    python -m repro.cli simulate --selection Ours --trading Ours --edges 10
    python -m repro.cli simulate --selection UCB --trading LY --seed 3 \
        --save-json run.json
    python -m repro.cli trace --selection Ours --trading Ours > events.jsonl
    python -m repro.cli trace --output run.jsonl --summary
    python -m repro.cli trace --edge 0 --summary --output edge0.jsonl
    python -m repro.cli zoo --dataset mnist
    python -m repro.cli experiment fig10 fig11 --full
    python -m repro.cli experiment fig03 fig04 --workers 4 --cache .repro_cache
    python -m repro.cli lint src/repro --format json
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    SELECTION_NAMES,
    TRADING_NAMES,
    run_combo,
    run_offline,
)
from repro.metrics import summarize_run
from repro.sim import ScenarioConfig, build_scenario

__all__ = ["build_parser", "main"]


def _add_scenario_options(parser: argparse.ArgumentParser) -> None:
    """Scenario/run options shared by ``simulate`` and ``trace``."""
    parser.add_argument("--dataset", choices=("synthetic", "mnist", "cifar10"),
                        default="synthetic")
    parser.add_argument("--edges", type=int, default=10)
    parser.add_argument("--horizon", type=int, default=160)
    parser.add_argument("--cap", type=float, default=500.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--switching-weight", type=float, default=1.0)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Carbon-neutralizing edge AI inference (ICDCS 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one policy combination")
    sim.add_argument("--selection", choices=SELECTION_NAMES, default="Ours")
    sim.add_argument("--trading", choices=TRADING_NAMES + ("Offline",), default="Ours")
    _add_scenario_options(sim)
    sim.add_argument("--save-json", metavar="PATH", default=None,
                     help="write the full per-slot result as JSON")
    sim.add_argument("--save-npz", metavar="PATH", default=None,
                     help="write the full per-slot result as compressed NPZ")

    trace = sub.add_parser(
        "trace",
        help="run one combination and emit its structured event log (JSONL)",
    )
    trace.add_argument("--selection", choices=SELECTION_NAMES, default="Ours")
    trace.add_argument("--trading", choices=TRADING_NAMES, default="Ours")
    _add_scenario_options(trace)
    trace.add_argument("--output", metavar="PATH", default=None,
                       help="write events to this JSONL file "
                            "(default: stream to stdout)")
    trace.add_argument("--summary", action="store_true",
                       help="print per-type event counts after the run")
    trace.add_argument("--edge", type=int, default=None, metavar="I",
                       help="keep only per-edge events (model switches, "
                            "block boundaries) of edge I")

    zoo = sub.add_parser("zoo", help="train and describe a model zoo")
    zoo.add_argument("--dataset", choices=("mnist", "cifar10"), default="mnist")
    zoo.add_argument("--zoo-seed", type=int, default=1234)
    zoo.add_argument("--n-train", type=int, default=2000)
    zoo.add_argument("--n-test", type=int, default=4000)
    zoo.add_argument("--bits", type=int, default=None,
                     help="also show int-quantized variants at this bit width")

    exp = sub.add_parser("experiment", help="run paper-figure experiments")
    exp.add_argument("figures", nargs="*", help="e.g. fig10 fig11 (default: all)")
    exp.add_argument("--full", action="store_true", help="paper-scale settings")
    exp.add_argument("--workers", type=int, default=1, metavar="N",
                     help="process-pool size for seed sweeps (1 = serial)")
    exp.add_argument("--cache", metavar="DIR", default=None,
                     help="result-cache directory (default: .repro_cache)")
    exp.add_argument("--no-cache", action="store_true",
                     help="disable the result cache entirely")

    lint = sub.add_parser(
        "lint", help="run the reprolint static-analysis gate (exit 1 on findings)"
    )
    lint.add_argument("paths", nargs="*",
                      help="files/directories (default: the repro package)")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--select", metavar="CODES", default=None,
                      help="comma-separated rule codes to run (default: all)")
    lint.add_argument("--list-rules", action="store_true",
                      help="list registered rule codes and exit")

    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = ScenarioConfig(
        dataset=args.dataset,
        num_edges=args.edges,
        horizon=args.horizon,
        carbon_cap_kg=args.cap,
        switching_weight=args.switching_weight,
    )
    scenario = build_scenario(config)
    if args.trading == "Offline":
        result = run_offline(scenario, args.seed)
    else:
        result = run_combo(scenario, args.selection, args.trading, args.seed)
    summary = summarize_run(result, config.weights)
    rows = [[key, value] for key, value in summary.as_dict().items()]
    print(format_table(["metric", "value"], rows, title=f"Run: {result.label}"))
    if args.save_json:
        from repro.sim.io import save_result_json

        print(f"saved JSON -> {save_result_json(result, args.save_json)}")
    if args.save_npz:
        from repro.sim.io import save_result_npz

        print(f"saved NPZ  -> {save_result_npz(result, args.save_npz)}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import EdgeFilterSink, JsonlSink, Tracer

    config = ScenarioConfig(
        dataset=args.dataset,
        num_edges=args.edges,
        horizon=args.horizon,
        carbon_cap_kg=args.cap,
        switching_weight=args.switching_weight,
    )
    scenario = build_scenario(config)
    sink = JsonlSink(args.output if args.output else sys.stdout)
    tracer_sink = sink if args.edge is None else EdgeFilterSink(sink, args.edge)
    tracer = Tracer([tracer_sink])
    try:
        result = run_combo(
            scenario, args.selection, args.trading, args.seed, tracer=tracer
        )
        tracer.close()
    except BrokenPipeError:
        # Downstream consumer (e.g. ``repro trace | head``) closed the
        # stream; that is a normal way to end a streaming run.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    if args.edge is None:
        counts = tracer.event_counts()
    else:
        counts = tracer_sink.forwarded_counts
    # When streaming, stdout is the event log — keep the summary off it.
    report = sys.stdout if args.output else sys.stderr
    scope = "" if args.edge is None else f" (edge {args.edge})"
    print(
        f"traced {result.label}: {sink.events_written} events{scope}"
        + (f" -> {args.output}" if args.output else ""),
        file=report,
    )
    if args.summary:
        for name in sorted(counts):
            print(f"  {name:<16} {counts[name]}", file=report)
    return 0


def _cmd_zoo(args: argparse.Namespace) -> int:
    from repro.sim.zoo import quantized_trained_profiles, trained_profiles

    kwargs = dict(zoo_seed=args.zoo_seed, n_train=args.n_train, n_test=args.n_test)
    profiles = trained_profiles(args.dataset, **kwargs)
    rows = [
        [p.name, p.size_bytes / 1e3, p.expected_loss, p.loss_std, p.accuracy]
        for p in profiles
    ]
    print(
        format_table(
            ["model", "size KB", "E[loss]", "loss std", "accuracy"],
            rows,
            title=f"{args.dataset} zoo (seed {args.zoo_seed})",
        )
    )
    if args.bits is not None:
        quantized = quantized_trained_profiles(
            args.dataset, bits=args.bits, **kwargs
        )
        rows = [
            [p.name, p.size_bytes / 1e3, p.expected_loss, p.loss_std, p.accuracy]
            for p in quantized
        ]
        print()
        print(
            format_table(
                ["model", "size KB", "E[loss]", "loss std", "accuracy"],
                rows,
                title=f"int{args.bits} variants",
            )
        )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.run_all import main as run_all_main

    argv = list(args.figures)
    if args.full:
        argv.append("--full")
    argv += ["--workers", str(args.workers)]
    if args.cache is not None:
        argv += ["--cache", args.cache]
    if args.no_cache:
        argv.append("--no-cache")
    run_all_main(argv)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main

    argv: list[str] = list(args.paths)
    argv += ["--format", args.format]
    if args.select:
        argv += ["--select", args.select]
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "zoo":
        return _cmd_zoo(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "lint":
        return _cmd_lint(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
