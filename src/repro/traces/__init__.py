"""Trace generators substituting the paper's real-world data sources.

* :mod:`repro.traces.workload` — London-Underground-like 15-minute passenger
  counts driving per-edge inference workloads.
* :mod:`repro.traces.carbon_prices` — EU-Carbon-Permit-like allowance prices.
* :mod:`repro.traces.geo` — Australia-like base-station geography providing
  heterogeneous model-download delays.
"""

from repro.traces.workload import WorkloadModel, generate_workload
from repro.traces.carbon_prices import CarbonPriceModel, PriceSeries, generate_prices
from repro.traces.geo import EdgeTopology, Site, generate_topology

__all__ = [
    "WorkloadModel",
    "generate_workload",
    "CarbonPriceModel",
    "PriceSeries",
    "generate_prices",
    "EdgeTopology",
    "Site",
    "generate_topology",
]
