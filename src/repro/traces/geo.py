"""Cloud/edge geography (Australian base-station substitute).

The paper places the cloud at one real Australian base station and edges at
10-50 others, estimating network delay from geographical distance.  We
generate seeded sites over an Australia-sized bounding box and derive each
edge's model-download delay ``u_i`` from its great-circle distance to the
cloud, which is all the algorithms consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.mathutils import haversine_km
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["Site", "EdgeTopology", "generate_topology"]

# Mainland-Australia-like bounding box.
_LAT_RANGE = (-38.0, -12.0)
_LON_RANGE = (114.0, 153.0)


@dataclass(frozen=True)
class Site:
    """A base-station site."""

    name: str
    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude out of range: {self.longitude}")

    def distance_km(self, other: "Site") -> float:
        """Great-circle distance to another site in kilometres."""
        return float(
            haversine_km(self.latitude, self.longitude, other.latitude, other.longitude)
        )


class EdgeTopology:
    """A cloud site plus edge sites, with distance-derived download delays.

    The download delay for edge ``i`` is
    ``u_i = base_delay_s + per_km_s * distance_km(cloud, edge_i)``, measured
    in seconds: a fixed wired-backbone latency plus a distance-proportional
    component (speed-of-light propagation and routing detours).
    """

    def __init__(
        self,
        cloud: Site,
        edges: list[Site],
        base_delay_s: float = 1.0,
        per_km_s: float = 0.0015,
    ) -> None:
        if not edges:
            raise ValueError("topology needs at least one edge site")
        self.cloud = cloud
        self.edges = list(edges)
        self.base_delay_s = check_nonnegative(base_delay_s, "base_delay_s")
        self.per_km_s = check_nonnegative(per_km_s, "per_km_s")

    @property
    def num_edges(self) -> int:
        """Number of edge sites."""
        return len(self.edges)

    def distances_km(self) -> np.ndarray:
        """Distance from the cloud to each edge, kilometres."""
        return np.array([self.cloud.distance_km(edge) for edge in self.edges])

    def download_delays(self) -> np.ndarray:
        """Model-download delay ``u_i`` per edge, in seconds."""
        return self.base_delay_s + self.per_km_s * self.distances_km()


def generate_topology(
    num_edges: int,
    rng: np.random.Generator,
    base_delay_s: float = 1.0,
    per_km_s: float = 0.0015,
) -> EdgeTopology:
    """Sample a cloud site plus ``num_edges`` edge sites.

    Sites cluster loosely toward the south-east (as Australian population
    does) by mixing a coastal cluster with uniform outback sites.
    """
    check_positive(num_edges, "num_edges")
    total = num_edges + 1

    lat = np.empty(total)
    lon = np.empty(total)
    cluster = rng.random(total) < 0.7
    n_cluster = int(cluster.sum())
    # South-east coastal cluster around (-33.5, 149).
    lat[cluster] = np.clip(rng.normal(-33.5, 3.0, n_cluster), *_LAT_RANGE)
    lon[cluster] = np.clip(rng.normal(149.0, 4.0, n_cluster), *_LON_RANGE)
    lat[~cluster] = rng.uniform(*_LAT_RANGE, total - n_cluster)
    lon[~cluster] = rng.uniform(*_LON_RANGE, total - n_cluster)

    cloud = Site(name="cloud", latitude=float(lat[0]), longitude=float(lon[0]))
    edges = [
        Site(name=f"edge-{i}", latitude=float(lat[i + 1]), longitude=float(lon[i + 1]))
        for i in range(num_edges)
    ]
    return EdgeTopology(cloud, edges, base_delay_s=base_delay_s, per_km_s=per_km_s)
