"""Carbon allowance price traces (EU Carbon Permit substitute).

The paper draws buying prices from EU Carbon Permits between March 2023 and
March 2024, i.e. the range [5.9, 10.9] cent/kg, and sets the selling price
to 90% of the buying price.  We generate a mean-reverting (Ornstein-
Uhlenbeck-style) series clipped to the same range — the trading algorithms
depend only on bounded, fluctuating, temporally correlated prices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_in_range, check_positive

__all__ = [
    "PriceSeries",
    "CarbonPriceModel",
    "RegimeShiftPriceModel",
    "generate_prices",
]


@dataclass(frozen=True)
class PriceSeries:
    """Aligned buy/sell price arrays over the horizon (cent per kg CO2)."""

    buy: np.ndarray
    sell: np.ndarray

    def __post_init__(self) -> None:
        if self.buy.shape != self.sell.shape or self.buy.ndim != 1:
            raise ValueError("buy and sell must be 1-D arrays of equal length")
        if np.any(self.sell > self.buy + 1e-12):
            raise ValueError("selling price must never exceed buying price")
        if np.any(self.buy <= 0) or np.any(self.sell < 0):
            raise ValueError("prices must be positive (buy) / non-negative (sell)")

    @property
    def horizon(self) -> int:
        """Number of slots covered."""
        return int(self.buy.size)


@dataclass(frozen=True)
class CarbonPriceModel:
    """Mean-reverting price process clipped to the paper's EU-permit range.

    ``p_{t+1} = p_t + kappa * (mu - p_t) + sigma * eps_t`` clipped to
    ``[low, high]``; the sell price is ``sell_ratio * buy`` (paper: 90%).
    """

    low: float = 5.9
    high: float = 10.9
    kappa: float = 0.08
    sigma: float = 0.35
    sell_ratio: float = 0.9

    def __post_init__(self) -> None:
        check_positive(self.low, "low")
        if self.high <= self.low:
            raise ValueError(f"high ({self.high}) must exceed low ({self.low})")
        check_in_range(self.kappa, "kappa", 0.0, 1.0)
        check_in_range(self.sell_ratio, "sell_ratio", 0.0, 1.0)
        if self.sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma}")

    @property
    def mean_price(self) -> float:
        """Long-run mean the process reverts to."""
        return 0.5 * (self.low + self.high)

    def generate(self, horizon: int, rng: np.random.Generator) -> PriceSeries:
        """Simulate ``horizon`` slots of buy/sell prices."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        buy = np.empty(horizon)
        price = rng.uniform(self.low, self.high)
        for t in range(horizon):
            buy[t] = price
            shock = self.sigma * rng.standard_normal()
            price = price + self.kappa * (self.mean_price - price) + shock
            price = float(np.clip(price, self.low, self.high))
        return PriceSeries(buy=buy, sell=self.sell_ratio * buy)


@dataclass(frozen=True)
class RegimeShiftPriceModel:
    """Mean-reverting prices with an abrupt regime change (robustness tests).

    Before ``shift_at`` (a fraction of the horizon) prices follow
    ``before``; after it they follow ``after`` — e.g. the whole EU-permit
    band jumping 30% on a policy announcement.  Online trading algorithms
    with no price model must re-adapt; forecasters must not blow up.
    """

    before: CarbonPriceModel = CarbonPriceModel()
    after: CarbonPriceModel = CarbonPriceModel(low=7.7, high=14.2)
    shift_at: float = 0.5

    def __post_init__(self) -> None:
        check_in_range(self.shift_at, "shift_at", 0.0, 1.0, inclusive=False)
        if self.before.sell_ratio != self.after.sell_ratio:
            raise ValueError("both regimes must use the same sell ratio")

    def generate(self, horizon: int, rng: np.random.Generator) -> PriceSeries:
        """Simulate the two regimes back to back."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        first = max(int(round(self.shift_at * horizon)), 1)
        second = horizon - first
        head = self.before.generate(first, rng)
        if second == 0:
            return head
        tail = self.after.generate(second, rng)
        buy = np.concatenate([head.buy, tail.buy])
        return PriceSeries(buy=buy, sell=self.before.sell_ratio * buy)


def generate_prices(
    horizon: int, rng: np.random.Generator, sell_ratio: float = 0.9
) -> PriceSeries:
    """Convenience wrapper: default :class:`CarbonPriceModel` series."""
    return CarbonPriceModel(sell_ratio=sell_ratio).generate(horizon, rng)
