"""Commuter-style workload traces (London Underground substitute).

The paper drives each edge's inference workload with 15-minute passenger
counts of London's busiest underground stations over a Thursday and Friday
(160 slots).  This module generates traces with the same statistics: a
double-peak (morning/evening commute) diurnal profile over 80 service slots
per day, heavy-tailed per-station volume (busier stations get proportionally
more traffic, Zipf-like), and multiplicative lognormal noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["WorkloadModel", "generate_workload"]

SLOTS_PER_DAY = 80  # 20 service hours x four 15-minute slots


def _diurnal_profile(slots_per_day: int) -> np.ndarray:
    """Double-peak commuter profile over one service day, mean 1."""
    # Service day runs 05:00-01:00; peaks around 08:30 and 17:45.
    hours = 5.0 + 20.0 * (np.arange(slots_per_day) + 0.5) / slots_per_day
    morning = np.exp(-0.5 * ((hours - 8.5) / 1.2) ** 2)
    evening = np.exp(-0.5 * ((hours - 17.75) / 1.6) ** 2)
    base = 0.25 + 1.8 * morning + 2.1 * evening
    return base / base.mean()


def _weekend_profile(slots_per_day: int) -> np.ndarray:
    """Single broad midday bump (leisure travel), mean 1, lower amplitude."""
    hours = 5.0 + 20.0 * (np.arange(slots_per_day) + 0.5) / slots_per_day
    midday = np.exp(-0.5 * ((hours - 14.0) / 3.5) ** 2)
    base = 0.35 + 1.3 * midday
    return base / base.mean()


@dataclass(frozen=True)
class WorkloadModel:
    """Configuration of the synthetic commuter workload.

    Attributes
    ----------
    base_mean:
        Mean arrivals per slot at the busiest station (rank 1).
    zipf_exponent:
        Per-station volume decays as ``rank^-zipf_exponent``; London's
        top-50 station entry counts are approximately Zipf with exponent
        ~0.55.
    noise_sigma:
        Sigma of the multiplicative lognormal noise on each slot.
    slots_per_day:
        Number of 15-minute service slots per day (default 80).
    """

    base_mean: float = 60.0
    zipf_exponent: float = 0.55
    noise_sigma: float = 0.18
    slots_per_day: int = SLOTS_PER_DAY

    def __post_init__(self) -> None:
        check_positive(self.base_mean, "base_mean")
        check_positive(self.slots_per_day, "slots_per_day")
        if self.zipf_exponent < 0:
            raise ValueError(f"zipf_exponent must be >= 0, got {self.zipf_exponent}")
        if self.noise_sigma < 0:
            raise ValueError(f"noise_sigma must be >= 0, got {self.noise_sigma}")

    def station_scales(self, num_edges: int) -> np.ndarray:
        """Relative traffic volume per station rank (rank 1 = busiest)."""
        if num_edges <= 0:
            raise ValueError(f"num_edges must be positive, got {num_edges}")
        ranks = np.arange(1, num_edges + 1, dtype=float)
        return ranks**-self.zipf_exponent

    def generate(
        self,
        num_edges: int,
        horizon: int,
        rng: np.random.Generator,
        day_types: str | None = None,
    ) -> np.ndarray:
        """Mean-arrival matrix of shape ``(num_edges, horizon)``.

        Day profiles repeat; each day is drawn with fresh noise so
        consecutive days differ slot-by-slot like the Thursday/Friday TfL
        counts.  ``day_types`` optionally mixes profiles per day: a string of
        ``"W"`` (weekday, double commuter peak) and ``"E"`` (weekend, single
        midday bump) characters cycled over the horizon — e.g. ``"WWWWWEE"``
        for a full week.  Default: all weekdays (the paper's Thu+Fri trace).
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        profiles = {
            "W": _diurnal_profile(self.slots_per_day),
            "E": _weekend_profile(self.slots_per_day),
        }
        pattern = day_types if day_types else "W"
        if any(ch not in profiles for ch in pattern):
            raise ValueError(
                f"day_types must contain only 'W'/'E', got {day_types!r}"
            )
        num_days = int(np.ceil(horizon / self.slots_per_day))
        tiled = np.concatenate(
            [profiles[pattern[d % len(pattern)]] for d in range(num_days)]
        )[:horizon]
        scales = self.station_scales(num_edges)
        means = self.base_mean * np.outer(scales, tiled)
        if self.noise_sigma > 0:
            noise = rng.lognormal(
                mean=-0.5 * self.noise_sigma**2,
                sigma=self.noise_sigma,
                size=means.shape,
            )
            means = means * noise
        return np.maximum(means, 1e-6)


def generate_workload(
    num_edges: int,
    horizon: int,
    rng: np.random.Generator,
    base_mean: float = 60.0,
) -> np.ndarray:
    """Convenience wrapper: default :class:`WorkloadModel` trace."""
    return WorkloadModel(base_mean=base_mean).generate(num_edges, horizon, rng)
