"""Scalar summaries of simulation runs, for experiment tables."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.config import CostWeights
from repro.sim.results import SimulationResult

__all__ = ["RunSummary", "summarize_run", "summarize_many"]


@dataclass(frozen=True)
class RunSummary:
    """The headline scalars of one run (or an average over runs)."""

    label: str
    total_cost: float
    inference_cost: float
    compute_cost: float
    switching_cost: float
    trading_cost: float
    emissions: float
    net_purchase: float
    final_fit: float
    switches: float
    mean_accuracy: float

    def as_dict(self) -> dict[str, float | str]:
        """Field mapping for table rendering."""
        return {
            "label": self.label,
            "total_cost": self.total_cost,
            "inference_cost": self.inference_cost,
            "compute_cost": self.compute_cost,
            "switching_cost": self.switching_cost,
            "trading_cost": self.trading_cost,
            "emissions": self.emissions,
            "net_purchase": self.net_purchase,
            "final_fit": self.final_fit,
            "switches": self.switches,
            "mean_accuracy": self.mean_accuracy,
        }


def summarize_run(result: SimulationResult, weights: CostWeights) -> RunSummary:
    """Weighted scalar summary of one run."""
    return RunSummary(
        label=result.label,
        total_cost=result.total_cost(weights),
        inference_cost=float(weights.inference * result.expected_inference_cost.sum()),
        compute_cost=float(weights.compute * result.compute_cost.sum()),
        switching_cost=float(weights.switching * result.switching_cost.sum()),
        trading_cost=float(weights.trading * result.trading_cost.sum()),
        emissions=float(result.emissions.sum()),
        net_purchase=float((result.bought - result.sold).sum()),
        final_fit=result.final_fit(),
        switches=float(result.total_switches()),
        mean_accuracy=result.mean_accuracy(),
    )


def summarize_many(
    results: list[SimulationResult], weights: CostWeights, label: str | None = None
) -> RunSummary:
    """Average the summaries of several runs (paper: mean of 10 seeds)."""
    if not results:
        raise ValueError("need at least one result to summarize")
    summaries = [summarize_run(r, weights) for r in results]
    mean = lambda attr: float(np.mean([getattr(s, attr) for s in summaries]))  # noqa: E731
    return RunSummary(
        label=label if label is not None else summaries[0].label,
        total_cost=mean("total_cost"),
        inference_cost=mean("inference_cost"),
        compute_cost=mean("compute_cost"),
        switching_cost=mean("switching_cost"),
        trading_cost=mean("trading_cost"),
        emissions=mean("emissions"),
        net_purchase=mean("net_purchase"),
        final_fit=mean("final_fit"),
        switches=mean("switches"),
        mean_accuracy=mean("mean_accuracy"),
    )
