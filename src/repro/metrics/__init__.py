"""Evaluation metrics: regret, fit, cost summaries."""

from repro.metrics.regret import (
    regret_series,
    final_regret,
    power_law_slope,
    sublinear_reference,
)
from repro.metrics.summary import RunSummary, summarize_run, summarize_many

__all__ = [
    "regret_series",
    "final_regret",
    "power_law_slope",
    "sublinear_reference",
    "RunSummary",
    "summarize_run",
    "summarize_many",
]
