"""Regret and fit metrics (Theorems 1-3).

The regret for the full problem ``P0`` is the gap between an online
policy's cumulative total cost and the offline optimum's (paper Fig. 10);
the fit is the cumulative positive violation of the carbon-neutrality
constraint (paper Fig. 11, available as ``SimulationResult.fit_series``).
"""

from __future__ import annotations

import numpy as np

from repro.sim.config import CostWeights
from repro.sim.results import SimulationResult
from repro.utils.validation import check_positive

__all__ = ["regret_series", "final_regret", "sublinear_reference", "power_law_slope"]


def power_law_slope(horizons, values) -> float:
    """Least-squares exponent ``a`` of ``values ~ C * horizons^a``.

    Only strictly positive values enter the log-log fit.  Returns 0.0 when
    fewer than two positive points remain (the quantity is essentially zero,
    i.e. trivially sub-linear).  Used to verify Theorem 1-3 rates: sub-linear
    growth means ``a < 1``.
    """
    x = np.asarray(horizons, dtype=float)
    y = np.asarray(values, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("horizons and values must be aligned 1-D sequences")
    mask = (y > 0) & (x > 0)
    if mask.sum() < 2:
        return 0.0
    log_x, log_y = np.log(x[mask]), np.log(y[mask])
    return float(np.polyfit(log_x, log_y, 1)[0])


def regret_series(
    result: SimulationResult,
    reference: SimulationResult,
    weights: CostWeights,
) -> np.ndarray:
    """Per-slot cumulative regret of ``result`` against ``reference``.

    Both runs must cover the same horizon (and should have faced the same
    scenario under common random numbers).
    """
    if result.horizon != reference.horizon:
        raise ValueError(
            f"horizon mismatch: {result.horizon} vs {reference.horizon}"
        )
    return result.cumulative_cost(weights) - reference.cumulative_cost(weights)


def final_regret(
    result: SimulationResult,
    reference: SimulationResult,
    weights: CostWeights,
) -> float:
    """Regret at the end of the horizon."""
    return float(regret_series(result, reference, weights)[-1])


def sublinear_reference(
    horizon: int, exponent: float, anchor_value: float
) -> np.ndarray:
    """A ``C * t^exponent`` reference curve for regret/fit plots.

    Scaled so the curve equals ``anchor_value`` at ``t = horizon`` — used to
    check the measured regret grows no faster than the theoretical rate.
    """
    check_positive(horizon, "horizon")
    if exponent <= 0 or exponent >= 1:
        raise ValueError(f"exponent must be in (0, 1), got {exponent}")
    t = np.arange(1, horizon + 1, dtype=float)
    return anchor_value * (t / horizon) ** exponent
