"""Fig. 13 — per-slot inference accuracy on the CIFAR-10-like stream.

Same protocol as Fig. 12, but over the harder 3-channel dataset and its
model zoo (small CNNs, LeNet-5, MobileNet-V1-style); absolute accuracies are
lower, with the same ordering of algorithms.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.experiments import fig12_accuracy_mnist as _fig12

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.engine import SweepEngine

__all__ = ["Fig13Result", "run", "format_result", "main"]

Fig13Result = _fig12.Fig12Result

TITLE = "Fig. 13 — inference accuracy per slot (CIFAR-10-like)"


def run(
    fast: bool = True,
    seeds: list[int] | None = None,
    engine: "SweepEngine | None" = None,
) -> Fig13Result:
    """Execute the CIFAR accuracy experiment.

    ``fast=True`` uses synthetic profiles with a different scenario seed (so
    the zoo differs from Fig. 12's); ``fast=False`` uses the trained
    CIFAR-10-like zoo.
    """
    if fast:
        # A distinct synthetic zoo: shift the scenario seed.
        from repro.experiments.settings import default_config, default_seeds
        from repro.experiments.runner import run_many, run_offline_many
        from repro.sim.scenario import build_scenario
        import numpy as np

        config = default_config(True, seed=13)
        scenario = build_scenario(config)
        seeds = default_seeds(True) if seeds is None else seeds
        accuracy = {}
        ours = run_many(scenario, "Ours", "Ours", seeds, label="Ours", engine=engine)
        accuracy["Ours"] = np.mean([r.accuracy for r in ours], axis=0)
        for sel, trade in _fig12.ACCURACY_ALGOS:
            label = f"{sel}-{trade}"
            results = run_many(scenario, sel, trade, seeds, label=label, engine=engine)
            accuracy[label] = np.mean([r.accuracy for r in results], axis=0)
        offline = run_offline_many(scenario, seeds, engine=engine)
        accuracy["Offline"] = np.mean([r.accuracy for r in offline], axis=0)
        return Fig13Result(horizon=config.horizon, accuracy=accuracy)
    return _fig12.run(fast=False, seeds=seeds, dataset="cifar10", engine=engine)


def format_result(result: Fig13Result) -> str:
    """Accuracy over four equal windows of the horizon."""
    return _fig12.format_result(result, title=TITLE)


def main(fast: bool = True) -> Fig13Result:
    """Run and print the experiment."""
    result = run(fast=fast)
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
