"""Fig. 6 — total cost versus the carbon emission rate.

Raising ``rho`` raises emissions and therefore allowance purchases.  The
paper observes (i) all costs grow with the rate, (ii) ours stays the lowest
among online methods, and (iii) at high rates ours can dip *below* Offline,
because Offline satisfies the neutrality constraint exactly while our online
algorithm tolerates bounded transient violations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.engine import SweepEngine
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_many, run_offline_many
from repro.experiments.settings import default_config, default_seeds
from repro.metrics.summary import summarize_many
from repro.sim.scenario import build_scenario

__all__ = ["Fig06Result", "run", "format_result", "main"]

PAPER_RATES = (0.25, 0.5, 1.0, 2.0)  # kg CO2 per kWh (paper default 0.5)
FAST_RATES = (0.25, 0.5, 1.0)
SWEEP_COMBOS = (
    ("Greedy", "LY"),
    ("TINF", "LY"),
    ("UCB", "LY"),
    ("UCB", "TH"),
)


@dataclass(frozen=True)
class Fig06Result:
    """Mean total cost per (algorithm, emission rate)."""

    rates: tuple[float, ...]
    costs: dict[str, list[float]]


def run(
    fast: bool = True,
    seeds: list[int] | None = None,
    rates: tuple[float, ...] | None = None,
    engine: SweepEngine | None = None,
) -> Fig06Result:
    """Execute the Fig. 6 sweep."""
    seeds = default_seeds(fast) if seeds is None else seeds
    rates = (FAST_RATES if fast else PAPER_RATES) if rates is None else rates

    labels = ["Ours"] + [f"{s}-{t}" for s, t in SWEEP_COMBOS] + ["Offline"]
    costs: dict[str, list[float]] = {label: [] for label in labels}
    for rate in rates:
        config = default_config(fast, rho_kg_per_kwh=rate)
        scenario = build_scenario(config)
        weights = config.weights
        results = run_many(scenario, "Ours", "Ours", seeds, label="Ours", engine=engine)
        costs["Ours"].append(summarize_many(results, weights).total_cost)
        for sel, trade in SWEEP_COMBOS:
            label = f"{sel}-{trade}"
            results = run_many(scenario, sel, trade, seeds, label=label, engine=engine)
            costs[label].append(summarize_many(results, weights).total_cost)
        offline = run_offline_many(scenario, seeds, engine=engine)
        costs["Offline"].append(summarize_many(offline, weights, label="Offline").total_cost)
    return Fig06Result(rates=tuple(rates), costs=costs)


def format_result(result: Fig06Result) -> str:
    """Total cost per emission rate."""
    rows = []
    for label, values in sorted(result.costs.items(), key=lambda kv: kv[1][-1]):
        rows.append([label] + list(values))
    headers = ["algorithm"] + [f"rho={r:g}" for r in result.rates]
    return format_table(headers, rows, title="Fig. 6 — total cost vs carbon emission rate")


def main(fast: bool = True) -> Fig06Result:
    """Run and print the experiment."""
    result = run(fast=fast)
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
