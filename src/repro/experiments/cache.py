"""Content-addressed on-disk cache for sweep results.

A sweep *cell* is one ``(scenario, selection, trading, seed)`` simulation.
Its cache key (:func:`cell_key`) is the SHA-256 of a canonical JSON
serialization of everything the run's output depends on:

* the scenario fingerprint (:func:`scenario_fingerprint`) — every config
  field plus digests of the *materialized* arrays (latencies, delays,
  prices, workload, profiles, data pools), so scenarios assembled around
  custom profiles via ``build_scenario_with_profiles`` key correctly too;
* the selection/trading policy names and the run label;
* the run seed;
* the repo result-schema version (:data:`repro.sim.io.FORMAT_VERSION`).

The value is the result serialized via :mod:`repro.sim.io`, wrapped with an
integrity digest.  Loads verify the digest and the key before returning
anything, so corrupted or truncated entries are detected, reported as
misses, and recomputed — never served.  Stores are atomic (write to a
temporary file, then ``os.replace``), so a crashed writer cannot leave a
half-written entry that a verifying reader would trust.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.sim.io import FORMAT_VERSION, result_from_dict, result_to_dict
from repro.sim.results import SimulationResult
from repro.sim.scenario import Scenario

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.faults.plan import FaultPlan

__all__ = [
    "PruneReport",
    "ResultCache",
    "cell_key",
    "scenario_fingerprint",
]


def _array_digest(array: np.ndarray | None) -> str | None:
    """Stable fingerprint of an array: dtype, shape, and raw-byte SHA-256."""
    if array is None:
        return None
    arr = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(str(arr.dtype).encode("utf-8"))
    digest.update(str(arr.shape).encode("utf-8"))
    digest.update(arr.tobytes())
    return digest.hexdigest()


def scenario_fingerprint(scenario: Scenario) -> dict:
    """JSON-ready mapping pinning down every exogenous input of a scenario.

    Config fields are embedded verbatim; materialized arrays are embedded as
    digests.  Two scenarios with equal fingerprints present identical inputs
    to the simulator, hence (given policy names and a seed) identical runs.
    """
    config = dataclasses.asdict(scenario.config)
    energy = scenario.energy
    return {
        "config": config,
        "latencies": _array_digest(scenario.latencies),
        "download_delays": _array_digest(scenario.download_delays),
        "buy_prices": _array_digest(scenario.prices.buy),
        "sell_prices": _array_digest(scenario.prices.sell),
        "workload_means": _array_digest(scenario.workload_means),
        "trade_bound": float(scenario.trade_bound),
        "energy": {
            "phi_kwh": _array_digest(energy.phi_kwh),
            "theta_kwh_per_byte": _array_digest(energy.theta_kwh_per_byte),
            "model_sizes_bytes": _array_digest(energy.model_sizes_bytes),
            "rho_kg_per_kwh": float(energy.rho_kg_per_kwh),
            "requests_per_arrival": float(energy.requests_per_arrival),
        },
        "profiles": [
            {
                "name": p.name,
                "size_bytes": float(p.size_bytes),
                "loss_per_sample": _array_digest(p.loss_per_sample),
                "correct_per_sample": _array_digest(p.correct_per_sample),
            }
            for p in scenario.profiles
        ],
        "edge_class_weights": _array_digest(scenario.edge_class_weights),
        "x_pool": _array_digest(scenario.x_pool),
        "y_pool": _array_digest(scenario.y_pool),
    }


def cell_key(
    scenario: Scenario,
    selection: str,
    trading: str,
    seed: int,
    label: str | None = None,
    *,
    kind: str = "combo",
    faults: "FaultPlan | None" = None,
    label_delay: int = 0,
    live_inference: bool = False,
) -> str:
    """The content-addressed cache key of one sweep cell (SHA-256 hex).

    ``kind`` distinguishes execution shapes beyond plain combinations
    (``"offline"`` for the two-pass LP reference); ``faults`` folds a
    non-empty fault plan into the key, and ``label_delay`` /
    ``live_inference`` fold in the run-spec options that change a cell's
    numbers.  All of them enter the payload only when non-default, so every
    pre-existing combo key is unchanged.
    """
    payload = {
        "schema_version": FORMAT_VERSION,
        "scenario": scenario_fingerprint(scenario),
        "selection": str(selection),
        "trading": str(trading),
        "seed": int(seed),
        "label": label,
    }
    if kind != "combo":
        payload["kind"] = str(kind)
    if faults is not None and not faults.is_empty:
        payload["faults"] = faults.to_dict()
    if label_delay:
        payload["label_delay"] = int(label_delay)
    if live_inference:
        payload["live_inference"] = True
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class PruneReport:
    """What a :meth:`ResultCache.prune` pass did (or would do, on dry-run)."""

    examined: int = 0
    removed: int = 0
    removed_bytes: int = 0
    kept: int = 0
    kept_bytes: int = 0
    dry_run: bool = False
    removed_paths: list[Path] = field(default_factory=list)


class ResultCache:
    """On-disk store mapping cell keys to serialized simulation results.

    Entries live under ``directory/<key[:2]>/<key>.json`` (sharded by key
    prefix to keep directories small).  ``hits`` / ``misses`` / ``stores``
    count this instance's traffic; corrupted loads count as misses.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.directory / key[:2] / f"{key}.json"

    def load(self, key: str) -> SimulationResult | None:
        """The cached result for ``key``, or ``None`` on miss/corruption.

        An entry is served only if it parses as JSON, carries the expected
        key, and its payload's canonical bytes match the stored integrity
        digest; anything else — truncation, bit flips, tampering, schema
        drift — is a miss, and the caller recomputes.
        """
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            entry = json.loads(raw)
            if entry["key"] != key:
                raise ValueError("cache entry key mismatch")
            payload = entry["payload"]
            canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
            digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
            if digest != entry["payload_sha256"]:
                raise ValueError("cache entry integrity digest mismatch")
            result = result_from_dict(payload)
        except (KeyError, TypeError, ValueError):
            # Corrupted/truncated/foreign entry: treat as a miss so the
            # caller recomputes and overwrites it with a good one.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, key: str, result: SimulationResult) -> Path:
        """Atomically persist ``result`` under ``key``; returns the path."""
        payload = result_to_dict(result)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        entry = json.dumps(
            {"key": key, "payload_sha256": digest, "payload": payload},
            sort_keys=True,
            separators=(",", ":"),
        )
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        tmp.write_text(entry, encoding="utf-8")
        os.replace(tmp, path)
        self.stores += 1
        return path

    def prune(
        self,
        *,
        max_age_seconds: float | None = None,
        max_size_bytes: int | None = None,
        dry_run: bool = False,
    ) -> PruneReport:
        """Evict entries by age and/or total size; returns what happened.

        Age eviction removes every entry whose file modification time is
        older than ``max_age_seconds``; size eviction then removes the
        oldest survivors until the cache fits ``max_size_bytes``.  With
        ``dry_run=True`` nothing is deleted — the report lists what a real
        pass would remove.  Emptied shard directories are cleaned up.
        """
        if max_age_seconds is None and max_size_bytes is None:
            raise ValueError("prune needs max_age_seconds and/or max_size_bytes")
        if max_age_seconds is not None and max_age_seconds < 0:
            raise ValueError(f"max_age_seconds must be >= 0, got {max_age_seconds}")
        if max_size_bytes is not None and max_size_bytes < 0:
            raise ValueError(f"max_size_bytes must be >= 0, got {max_size_bytes}")

        # Cache age is wall-clock by definition: eviction compares file
        # mtimes against now and never feeds simulated time.
        now = time.time()  # noqa: RPL008 -- cache eviction age is wall-clock by definition, never simulated time
        entries = []
        for path in self.directory.glob("*/*.json"):
            stat = path.stat()
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort(key=lambda item: (item[0], str(item[2])))

        report = PruneReport(examined=len(entries), dry_run=dry_run)
        survivors = []
        for mtime, size, path in entries:
            if max_age_seconds is not None and now - mtime > max_age_seconds:
                report.removed += 1
                report.removed_bytes += size
                report.removed_paths.append(path)
            else:
                survivors.append((mtime, size, path))

        if max_size_bytes is not None:
            total = sum(size for _, size, _ in survivors)
            index = 0
            while total > max_size_bytes and index < len(survivors):
                _, size, path = survivors[index]
                report.removed += 1
                report.removed_bytes += size
                report.removed_paths.append(path)
                total -= size
                index += 1
            survivors = survivors[index:]

        report.kept = len(survivors)
        report.kept_bytes = sum(size for _, size, _ in survivors)
        if not dry_run:
            for path in report.removed_paths:
                path.unlink(missing_ok=True)
            for shard in self.directory.iterdir():
                if shard.is_dir() and not any(shard.iterdir()):
                    shard.rmdir()
        return report

    def total_size_bytes(self) -> int:
        """Bytes currently occupied by cache entries."""
        return sum(path.stat().st_size for path in self.directory.glob("*/*.json"))

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResultCache({str(self.directory)!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores})"
        )
