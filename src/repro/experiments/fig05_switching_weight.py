"""Fig. 5 — total cost versus the weight of the switching cost.

The paper grows the switching-cost weight and observes that our approach's
total cost stays almost flat (the block lengths grow with the weight,
suppressing switches) while every switching-oblivious baseline deteriorates;
Greedy ranks second because it never switches after the first download.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.engine import SweepEngine
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_many, run_offline_many
from repro.experiments.settings import default_config, default_seeds
from repro.metrics.summary import summarize_many
from repro.sim.scenario import build_scenario

__all__ = ["Fig05Result", "run", "format_result", "main"]

PAPER_WEIGHTS = (1.0, 2.0, 4.0, 8.0, 16.0)
FAST_WEIGHTS = (1.0, 4.0, 16.0)
SWEEP_COMBOS = (
    ("Ran", "LY"),
    ("Greedy", "LY"),
    ("TINF", "LY"),
    ("UCB", "LY"),
)


@dataclass(frozen=True)
class Fig05Result:
    """Mean total cost per (algorithm, switching weight)."""

    sweep: tuple[float, ...]
    costs: dict[str, list[float]]

    def relative_growth(self, label: str) -> float:
        """Cost at the largest weight divided by cost at the smallest."""
        values = self.costs[label]
        return values[-1] / values[0]


def run(
    fast: bool = True,
    seeds: list[int] | None = None,
    sweep: tuple[float, ...] | None = None,
    engine: SweepEngine | None = None,
) -> Fig05Result:
    """Execute the Fig. 5 sweep."""
    seeds = default_seeds(fast) if seeds is None else seeds
    sweep = (FAST_WEIGHTS if fast else PAPER_WEIGHTS) if sweep is None else sweep

    labels = ["Ours"] + [f"{s}-{t}" for s, t in SWEEP_COMBOS] + ["Offline"]
    costs: dict[str, list[float]] = {label: [] for label in labels}
    for weight in sweep:
        config = default_config(fast, switching_weight=weight)
        scenario = build_scenario(config)
        weights = config.weights
        results = run_many(scenario, "Ours", "Ours", seeds, label="Ours", engine=engine)
        costs["Ours"].append(summarize_many(results, weights).total_cost)
        for sel, trade in SWEEP_COMBOS:
            label = f"{sel}-{trade}"
            results = run_many(scenario, sel, trade, seeds, label=label, engine=engine)
            costs[label].append(summarize_many(results, weights).total_cost)
        offline = run_offline_many(scenario, seeds, engine=engine)
        costs["Offline"].append(summarize_many(offline, weights, label="Offline").total_cost)
    return Fig05Result(sweep=tuple(sweep), costs=costs)


def format_result(result: Fig05Result) -> str:
    """Cost per weight plus the growth ratio (flat = close to 1)."""
    rows = []
    for label, values in sorted(result.costs.items(), key=lambda kv: kv[1][-1]):
        rows.append([label] + list(values) + [result.relative_growth(label)])
    headers = (
        ["algorithm"]
        + [f"w={w:g}" for w in result.sweep]
        + ["growth(last/first)"]
    )
    return format_table(
        headers, rows, title="Fig. 5 — total cost vs switching-cost weight"
    )


def main(fast: bool = True) -> Fig05Result:
    """Run and print the experiment."""
    result = run(fast=fast)
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
