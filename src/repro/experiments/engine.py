"""The parallel seed-sweep engine behind every figure experiment.

A figure experiment is a sweep: many independent ``(selection, trading,
seed)`` cells simulated on a shared scenario and averaged.  The cells share
no state — each run derives all of its randomness from its own seed — so
they parallelize perfectly, and :class:`SweepEngine` fans them out over a
``ProcessPoolExecutor`` while preserving the *strongest* determinism
contract the simulator supports: results come back in cell order and are
bit-identical to a serial run, regardless of worker count, completion
order, or whether a cell was served from the on-disk
:class:`~repro.experiments.cache.ResultCache`.

``workers=1`` (the default) never constructs a pool: cells execute
in-process, serially, exactly as the pre-engine ``run_many`` did.

The module-level *default engine* is what ``repro.experiments.runner.
run_many`` routes through when no engine is passed explicitly, so the CLI
(``repro experiment --workers N --cache DIR``) can reconfigure every figure
experiment at once via :func:`use_engine` without touching their signatures.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.experiments.cache import ResultCache, cell_key
from repro.policies import selection_names, trading_names
from repro.sim.results import SimulationResult
from repro.sim.scenario import Scenario

__all__ = [
    "SweepCell",
    "SweepEngine",
    "SweepStats",
    "get_default_engine",
    "set_default_engine",
    "use_engine",
]


@dataclass(frozen=True)
class SweepCell:
    """One unit of sweep work: a (selection, trading, seed) combination."""

    selection: str
    trading: str
    seed: int
    label: str | None = None


@dataclass
class SweepStats:
    """Tally of how an engine's cells were satisfied (cumulative)."""

    cells: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_stores: int = 0

    def add(self, other: "SweepStats") -> None:
        """Fold another tally into this one."""
        self.cells += other.cells
        self.executed += other.executed
        self.cache_hits += other.cache_hits
        self.cache_stores += other.cache_stores


def _execute_cell(scenario: Scenario, cell: SweepCell) -> SimulationResult:
    """Run one cell (module-level so worker processes can unpickle it)."""
    from repro.experiments.runner import run_combo

    return run_combo(
        scenario, cell.selection, cell.trading, cell.seed, label=cell.label
    )


class SweepEngine:
    """Executes sweep cells, optionally in parallel and through a cache.

    Parameters
    ----------
    workers:
        Process count.  ``1`` runs every cell in-process with no pool;
        ``N > 1`` fans cells out over a ``ProcessPoolExecutor``.  Either
        way, results are returned in cell order and are bit-identical.
    cache:
        Optional :class:`~repro.experiments.cache.ResultCache`.  Cells whose
        key is present (and intact) are loaded instead of simulated; misses
        are simulated and stored.
    """

    def __init__(self, workers: int = 1, cache: ResultCache | None = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.cache = cache
        self.stats = SweepStats()

    def run_cells(
        self, scenario: Scenario, cells: Sequence[SweepCell]
    ) -> list[SimulationResult]:
        """Simulate (or load) every cell; results align with ``cells``."""
        cells = list(cells)
        if not cells:
            return []
        self._validate(cells)
        batch = SweepStats(cells=len(cells))
        results: list[SimulationResult | None] = [None] * len(cells)

        pending: list[int] = []
        keys: dict[int, str] = {}
        if self.cache is not None:
            for index, cell in enumerate(cells):
                key = cell_key(
                    scenario, cell.selection, cell.trading, cell.seed, cell.label
                )
                keys[index] = key
                cached = self.cache.load(key)
                if cached is not None:
                    results[index] = cached
                    batch.cache_hits += 1
                else:
                    pending.append(index)
        else:
            pending = list(range(len(cells)))

        if pending:
            if self.workers == 1:
                for index in pending:
                    results[index] = _execute_cell(scenario, cells[index])
            else:
                self._run_pool(scenario, cells, pending, results)
            batch.executed += len(pending)
            if self.cache is not None:
                for index in pending:
                    result = results[index]
                    assert result is not None  # filled by the branch above
                    self.cache.store(keys[index], result)
                    batch.cache_stores += 1

        self.stats.add(batch)
        return [result for result in results if result is not None]

    def run_many(
        self,
        scenario: Scenario,
        selection: str,
        trading: str,
        seeds: Sequence[int],
        label: str | None = None,
    ) -> list[SimulationResult]:
        """One cell per seed for a fixed combination (``run_many`` shape)."""
        if not seeds:
            raise ValueError("need at least one seed")
        cells = [SweepCell(selection, trading, int(s), label) for s in seeds]
        return self.run_cells(scenario, cells)

    def _run_pool(
        self,
        scenario: Scenario,
        cells: Sequence[SweepCell],
        pending: Sequence[int],
        results: list[SimulationResult | None],
    ) -> None:
        """Fan pending cells over a process pool; fill ``results`` in place."""
        max_workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(_execute_cell, scenario, cells[index]): index
                for index in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    results[futures[future]] = future.result()

    def _validate(self, cells: Sequence[SweepCell]) -> None:
        """Reject unknown policy names before any fork/simulation starts."""
        known_selection = set(selection_names())
        known_trading = set(trading_names())
        for cell in cells:
            if cell.selection not in known_selection:
                raise ValueError(
                    f"unknown selection policy {cell.selection!r}; expected "
                    f"one of {tuple(sorted(known_selection))}"
                )
            if cell.trading not in known_trading:
                raise ValueError(
                    f"unknown trading policy {cell.trading!r}; expected one "
                    f"of {tuple(sorted(known_trading))}"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cache = "on" if self.cache is not None else "off"
        return f"SweepEngine(workers={self.workers}, cache={cache})"


#: Engine used by ``run_many`` when none is passed: serial, uncached —
#: exactly the pre-engine behavior.
_DEFAULT_ENGINE = SweepEngine()


def get_default_engine() -> SweepEngine:
    """The engine ``run_many`` uses when no explicit engine is given."""
    return _DEFAULT_ENGINE


def set_default_engine(engine: SweepEngine) -> SweepEngine:
    """Replace the default engine; returns the previous one."""
    global _DEFAULT_ENGINE
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous


@contextmanager
def use_engine(engine: SweepEngine) -> Iterator[SweepEngine]:
    """Scope ``engine`` as the default for the duration of a ``with`` block."""
    previous = set_default_engine(engine)
    try:
        yield engine
    finally:
        set_default_engine(previous)
