"""The parallel seed-sweep engine behind every figure experiment.

A figure experiment is a sweep: many independent ``(selection, trading,
seed)`` cells simulated on a shared scenario and averaged.  The cells share
no state — each run derives all of its randomness from its own seed — so
they parallelize perfectly, and :class:`SweepEngine` fans them out over a
``ProcessPoolExecutor`` while preserving the *strongest* determinism
contract the simulator supports: results come back in cell order and are
bit-identical to a serial run, regardless of worker count, completion
order, or whether a cell was served from the on-disk
:class:`~repro.experiments.cache.ResultCache`.

``workers=1`` (the default) never constructs a pool: cells execute
in-process, serially, exactly as the pre-engine ``run_many`` did.

The engine is also the resilience layer of the experiment harness:

* a crashed pool worker (``BrokenProcessPool``) retries the lost cells on
  a fresh pool with exponential backoff, and cells that keep failing —
  or pools that keep breaking — fall back to in-process execution, so a
  sweep completes (bit-identically) rather than aborting;
* ``cell_timeout`` bounds how long the engine waits without *any* cell
  completing before declaring the pool hung and recovering the same way;
* a :class:`~repro.experiments.checkpoint.SweepCheckpoint` journals each
  completed cell durably, so a killed ``run_all`` resumes executing only
  the remaining cells;
* a :class:`~repro.faults.plan.FaultPlan` attached to the engine runs every
  cell under deterministic fault injection (keys fold the plan in, so
  faulted and clean results never collide in the cache).

The module-level *default engine* is what ``repro.experiments.runner.
run_many`` routes through when no engine is passed explicitly, so the CLI
(``repro experiment --workers N --cache DIR``) can reconfigure every figure
experiment at once via :func:`use_engine` without touching their signatures.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.experiments.cache import ResultCache, cell_key
from repro.experiments.checkpoint import SweepCheckpoint
from repro.policies import selection_names, trading_names
from repro.sim.results import SimulationResult
from repro.sim.scenario import Scenario
from repro.spec import RunSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.scenario_pool import ScenarioPool
    from repro.faults.plan import FaultPlan

__all__ = [
    "SweepCell",
    "SweepEngine",
    "SweepStats",
    "get_default_engine",
    "set_default_engine",
    "use_engine",
]

#: Cell kinds the engine knows how to execute.
_CELL_KINDS = ("combo", "offline")

#: Env hooks used by the resilience tests to make a pool worker crash or
#: hang on a specific cell, exactly once (a marker file arms each hook).
#: Format: ``"<seed>:<marker path>"``; active only inside pool workers.
_TEST_CRASH_ENV = "REPRO_ENGINE_TEST_CRASH"
_TEST_HANG_ENV = "REPRO_ENGINE_TEST_HANG"


@dataclass(frozen=True)
class SweepCell:
    """One unit of sweep work: a (selection, trading, seed) combination.

    ``kind`` selects the execution shape: ``"combo"`` is one registry-named
    simulation, ``"offline"`` the two-pass clairvoyant reference (whose
    selection/trading names are fixed placeholders, not registry lookups).
    ``label_delay`` and ``live_inference`` carry the run-spec options that
    change a combo cell's numbers (and therefore its cache key).
    """

    selection: str
    trading: str
    seed: int
    label: str | None = None
    kind: str = "combo"
    label_delay: int = 0
    live_inference: bool = False

    @classmethod
    def from_spec(cls, spec: RunSpec) -> "SweepCell":
        """The cell that executes ``spec`` (see :meth:`SweepEngine.run_specs`).

        Scenario, faults, and tracing are engine-level concerns: the
        scenario is the sweep's shared argument, faults attach to the
        engine (folding into every key), and tracing runs don't belong in a
        cache-keyed sweep — so specs carrying a non-empty fault plan or a
        trace output are rejected here.
        """
        if not spec.faults.is_empty:
            raise ValueError(
                "sweep cells take fault plans from the engine "
                "(SweepEngine(faults=...)), not from individual specs"
            )
        if spec.trace_output is not None:
            raise ValueError(
                "tracing runs don't go through the sweep engine; run the "
                "spec directly via repro.run or Simulator.from_spec"
            )
        return cls(
            selection=spec.selection,
            trading=spec.trading,
            seed=int(spec.seed),
            label=spec.label,
            label_delay=int(spec.label_delay),
            live_inference=bool(spec.live_inference),
        )

    def to_spec(self, faults: "FaultPlan | None" = None) -> RunSpec:
        """The :class:`RunSpec` a worker executes for this (combo) cell."""
        from repro.faults.plan import FaultPlan

        return RunSpec(
            selection=self.selection,
            trading=self.trading,
            seed=self.seed,
            label=self.label,
            label_delay=self.label_delay,
            live_inference=self.live_inference,
            faults=faults if faults is not None else FaultPlan(),
        )


@dataclass
class SweepStats:
    """Tally of how an engine's cells were satisfied (cumulative)."""

    cells: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_stores: int = 0
    checkpoint_hits: int = 0
    retries: int = 0
    pool_failures: int = 0
    fallback_cells: int = 0

    def add(self, other: "SweepStats") -> None:
        """Fold another tally into this one."""
        self.cells += other.cells
        self.executed += other.executed
        self.cache_hits += other.cache_hits
        self.cache_stores += other.cache_stores
        self.checkpoint_hits += other.checkpoint_hits
        self.retries += other.retries
        self.pool_failures += other.pool_failures
        self.fallback_cells += other.fallback_cells


def _maybe_fire_test_hooks(cell: SweepCell) -> None:
    """Crash/hang this worker if a test hook targets ``cell`` (once).

    Hooks only fire inside pool workers (``multiprocessing.parent_process``
    is ``None`` in the main process), so in-process retries and fallbacks
    always succeed — which is exactly the behavior under test.
    """
    import multiprocessing
    from pathlib import Path

    if multiprocessing.parent_process() is None:
        return
    crash = os.environ.get(_TEST_CRASH_ENV, "")
    if crash:
        seed_text, _, marker = crash.partition(":")
        path = Path(marker)
        if cell.seed == int(seed_text) and not path.exists():
            path.write_text("crashed", encoding="utf-8")
            os._exit(1)
    hang = os.environ.get(_TEST_HANG_ENV, "")
    if hang:
        seed_text, _, marker = hang.partition(":")
        path = Path(marker)
        if cell.seed == int(seed_text) and not path.exists():
            path.write_text("hung", encoding="utf-8")
            time.sleep(30.0)


def _execute_cell(
    scenario: Scenario, cell: SweepCell, faults: "FaultPlan | None" = None
) -> SimulationResult:
    """Run one cell (module-level so worker processes can unpickle it)."""
    from repro.experiments.runner import run_offline
    from repro.sim.simulator import Simulator

    _maybe_fire_test_hooks(cell)
    if cell.kind == "offline":
        return run_offline(scenario, cell.seed, faults=faults)
    return Simulator.from_spec(scenario, cell.to_spec(faults)).run()


def _execute_cell_ref(
    ref, cell: SweepCell, faults: "FaultPlan | None" = None
) -> SimulationResult:
    """Ref-based variant for pooled scenarios: resolve, then execute.

    The worker receives a :class:`~repro.experiments.scenario_pool.
    ScenarioRef` (a digest and a path — bytes, not megabytes) and loads
    the scenario at most once per process via the pool's resolve memo.
    """
    from repro.experiments.scenario_pool import resolve

    return _execute_cell(resolve(ref), cell, faults)


class _PoolRoundFailed(Exception):
    """Internal: the current pool broke or stalled; survivors retry."""


class SweepEngine:
    """Executes sweep cells, optionally in parallel and through a cache.

    Parameters
    ----------
    workers:
        Process count.  ``1`` runs every cell in-process with no pool;
        ``N > 1`` fans cells out over a ``ProcessPoolExecutor``.  Either
        way, results are returned in cell order and are bit-identical.
    cache:
        Optional :class:`~repro.experiments.cache.ResultCache`.  Cells whose
        key is present (and intact) are loaded instead of simulated; misses
        are simulated and stored the moment they complete.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` applied to every cell
        (folded into cache/checkpoint keys when non-empty).
    checkpoint:
        Optional :class:`~repro.experiments.checkpoint.SweepCheckpoint`.
        Completed cells are journaled durably; on the next run, journaled
        cells load instead of executing (resume-after-kill).
    cell_timeout:
        Seconds the pool may go without *any* cell completing before the
        engine declares it hung and recovers (``None`` waits forever).
    max_retries:
        Pool attempts per cell before it falls back to in-process
        execution.
    pool_failure_limit:
        Broken/hung pools tolerated before the whole remainder of the
        sweep falls back to in-process execution.
    scenario_pool:
        Optional :class:`~repro.experiments.scenario_pool.ScenarioPool`.
        When set, pool submissions ship a content-addressed
        :class:`~repro.experiments.scenario_pool.ScenarioRef` instead of
        pickling the materialized scenario into every task, and workers
        resolve (and memoize) each distinct scenario once per process —
        the cross-figure sharing seam ``run_all`` mounts for the whole
        invocation.  Serial and fallback cells use the live scenario
        object directly; results are bit-identical either way.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | None = None,
        *,
        faults: "FaultPlan | None" = None,
        checkpoint: SweepCheckpoint | None = None,
        cell_timeout: float | None = None,
        max_retries: int = 2,
        pool_failure_limit: int = 3,
        scenario_pool: "ScenarioPool | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if cell_timeout is not None and cell_timeout <= 0:
            raise ValueError(f"cell_timeout must be positive, got {cell_timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if pool_failure_limit < 1:
            raise ValueError(
                f"pool_failure_limit must be >= 1, got {pool_failure_limit}"
            )
        self.workers = int(workers)
        self.cache = cache
        self.faults = faults
        self.checkpoint = checkpoint
        self.cell_timeout = cell_timeout
        self.max_retries = int(max_retries)
        self.pool_failure_limit = int(pool_failure_limit)
        self.scenario_pool = scenario_pool
        self.stats = SweepStats()

    def run_cells(
        self, scenario: Scenario, cells: Sequence[SweepCell]
    ) -> list[SimulationResult]:
        """Simulate (or load) every cell; results align with ``cells``."""
        cells = list(cells)
        if not cells:
            return []
        self._validate(cells)
        batch = SweepStats(cells=len(cells))
        results: list[SimulationResult | None] = [None] * len(cells)

        pending: list[int] = []
        keys: dict[int, str] = {}
        if self.cache is not None or self.checkpoint is not None:
            for index, cell in enumerate(cells):
                keys[index] = cell_key(
                    scenario,
                    cell.selection,
                    cell.trading,
                    cell.seed,
                    cell.label,
                    kind=cell.kind,
                    faults=self.faults,
                    label_delay=cell.label_delay,
                    live_inference=cell.live_inference,
                )
        for index, cell in enumerate(cells):
            if self.checkpoint is not None:
                checkpointed = self.checkpoint.load(keys[index])
                if checkpointed is not None:
                    results[index] = checkpointed
                    batch.checkpoint_hits += 1
                    continue
            if self.cache is not None:
                cached = self.cache.load(keys[index])
                if cached is not None:
                    results[index] = cached
                    batch.cache_hits += 1
                    self._commit(keys.get(index), cached, batch, store=False)
                    continue
            pending.append(index)

        def commit(index: int) -> None:
            result = results[index]
            assert result is not None  # filled by the executing branch
            self._commit(keys.get(index), result, batch)

        if pending:
            if self.workers == 1:
                for index in pending:
                    results[index] = _execute_cell(
                        scenario, cells[index], self.faults
                    )
                    commit(index)
            else:
                self._run_pool(scenario, cells, pending, results, commit, batch)
            batch.executed += len(pending)

        self.stats.add(batch)
        return [result for result in results if result is not None]

    def _commit(
        self,
        key: str | None,
        result: SimulationResult,
        batch: SweepStats,
        store: bool = True,
    ) -> None:
        """Persist one completed cell to the cache and the checkpoint."""
        if key is None:
            return
        if store and self.cache is not None:
            self.cache.store(key, result)
            batch.cache_stores += 1
        if self.checkpoint is not None and key not in self.checkpoint:
            self.checkpoint.append(key, result)

    def run_specs(
        self, scenario: Scenario, specs: Sequence[RunSpec]
    ) -> list[SimulationResult]:
        """Simulate one cell per :class:`RunSpec`; results align with ``specs``.

        The canonical sweep entry point: any mix of combinations, seeds,
        labels, and per-spec ``label_delay`` / ``live_inference`` options,
        sharing one pre-built ``scenario`` (each spec's own ``scenario``
        field is ignored, as everywhere a scenario is passed explicitly).
        Specs carrying fault plans or trace outputs are rejected — faults
        attach to the engine, tracing runs don't sweep.
        """
        if not specs:
            raise ValueError("need at least one run spec")
        cells = [SweepCell.from_spec(spec) for spec in specs]
        return self.run_cells(scenario, cells)

    def run_many(
        self,
        scenario: Scenario,
        selection: str,
        trading: str,
        seeds: Sequence[int],
        label: str | None = None,
    ) -> list[SimulationResult]:
        """Deprecated: one cell per seed from a keyword tail.

        .. deprecated:: 1.2
            Use :meth:`run_specs` with one :class:`repro.RunSpec` per seed;
            results are bit-identical through either entry point.
        """
        warnings.warn(
            "SweepEngine.run_many is deprecated; build repro.RunSpec values "
            "and call run_specs(scenario, specs) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if not seeds:
            raise ValueError("need at least one seed")
        cells = [SweepCell(selection, trading, int(s), label) for s in seeds]
        return self.run_cells(scenario, cells)

    def run_offline_many(
        self, scenario: Scenario, seeds: Sequence[int]
    ) -> list[SimulationResult]:
        """The two-pass "Offline" reference once per seed, as sweep cells."""
        if not seeds:
            raise ValueError("need at least one seed")
        cells = [
            SweepCell("Offline", "Offline", int(s), label="Offline", kind="offline")
            for s in seeds
        ]
        return self.run_cells(scenario, cells)

    def _run_pool(
        self,
        scenario: Scenario,
        cells: Sequence[SweepCell],
        pending: Sequence[int],
        results: list[SimulationResult | None],
        commit,
        batch: SweepStats,
    ) -> None:
        """Fan pending cells over process pools, retrying around failures.

        Each round uses a fresh pool (a broken pool cannot be reused).  A
        round that breaks or stalls increments ``pool_failures``; its lost
        cells retry on the next round until ``max_retries``, after which —
        or once ``pool_failure_limit`` rounds have failed — the remainder
        executes in-process, which cannot crash the sweep.
        """
        remaining = list(pending)
        attempts = {index: 0 for index in remaining}
        while remaining:
            if batch.pool_failures >= self.pool_failure_limit:
                for index in remaining:
                    self._run_in_process(scenario, cells, index, results, commit)
                    batch.fallback_cells += 1
                return
            failed = self._pool_round(scenario, cells, remaining, results, commit)
            if not failed:
                return
            batch.pool_failures += 1
            retry: list[int] = []
            for index in failed:
                attempts[index] += 1
                if attempts[index] > self.max_retries:
                    self._run_in_process(scenario, cells, index, results, commit)
                    batch.fallback_cells += 1
                else:
                    retry.append(index)
            batch.retries += len(retry)
            remaining = retry
            if remaining:
                # Exponential backoff before rebuilding the pool: transient
                # resource exhaustion (OOM kills, fork storms) needs air.
                time.sleep(min(0.05 * 2 ** (batch.pool_failures - 1), 1.0))

    def _run_in_process(
        self,
        scenario: Scenario,
        cells: Sequence[SweepCell],
        index: int,
        results: list[SimulationResult | None],
        commit,
    ) -> None:
        """Execute one cell in the main process (the no-pool fallback)."""
        results[index] = _execute_cell(scenario, cells[index], self.faults)
        commit(index)

    def _pool_round(
        self,
        scenario: Scenario,
        cells: Sequence[SweepCell],
        pending: Sequence[int],
        results: list[SimulationResult | None],
        commit,
    ) -> list[int]:
        """One pool lifetime; returns the indexes lost to a break/stall.

        Completed cells are committed as they land, so a failure mid-round
        never discards finished work — only unfinished cells return for
        retry.
        """
        max_workers = min(self.workers, len(pending))
        if self.scenario_pool is not None:
            execute, payload = _execute_cell_ref, self.scenario_pool.share(scenario)
        else:
            execute, payload = _execute_cell, scenario
        pool = ProcessPoolExecutor(max_workers=max_workers)
        try:
            futures = {
                pool.submit(execute, payload, cells[index], self.faults): index
                for index in pending
            }
            remaining = set(futures)
            while remaining:
                done, not_done = wait(
                    remaining,
                    timeout=self.cell_timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    # No cell finished within cell_timeout: the pool is
                    # stalled (hung worker, wedged fork).  Abandon it.
                    raise _PoolRoundFailed
                for future in done:
                    index = futures[future]
                    try:
                        results[index] = future.result()
                    except BrokenProcessPool as exc:
                        raise _PoolRoundFailed from exc
                    commit(index)
                remaining = not_done
        except _PoolRoundFailed:
            self._abandon_pool(pool)
            return [index for index in pending if results[index] is None]
        pool.shutdown()
        return []

    @staticmethod
    def _abandon_pool(pool: ProcessPoolExecutor) -> None:
        """Shut down a broken/stalled pool without waiting on its workers."""
        processes = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            if process.is_alive():
                process.terminate()

    def _validate(self, cells: Sequence[SweepCell]) -> None:
        """Reject unknown policy names/kinds before any fork/simulation."""
        known_selection = set(selection_names())
        known_trading = set(trading_names())
        for cell in cells:
            if cell.kind not in _CELL_KINDS:
                raise ValueError(
                    f"unknown cell kind {cell.kind!r}; expected one of "
                    f"{_CELL_KINDS}"
                )
            if cell.kind != "combo":
                continue  # non-combo kinds carry placeholder policy names
            if cell.selection not in known_selection:
                raise ValueError(
                    f"unknown selection policy {cell.selection!r}; expected "
                    f"one of {tuple(sorted(known_selection))}"
                )
            if cell.trading not in known_trading:
                raise ValueError(
                    f"unknown trading policy {cell.trading!r}; expected one "
                    f"of {tuple(sorted(known_trading))}"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cache = "on" if self.cache is not None else "off"
        checkpoint = "on" if self.checkpoint is not None else "off"
        faults = "on" if self.faults is not None and not self.faults.is_empty else "off"
        return (
            f"SweepEngine(workers={self.workers}, cache={cache}, "
            f"checkpoint={checkpoint}, faults={faults})"
        )


#: Engine used by ``run_many`` when none is passed: serial, uncached —
#: exactly the pre-engine behavior.
_DEFAULT_ENGINE = SweepEngine()


def get_default_engine() -> SweepEngine:
    """The engine ``run_many`` uses when no explicit engine is given."""
    return _DEFAULT_ENGINE


def set_default_engine(engine: SweepEngine) -> SweepEngine:
    """Replace the default engine; returns the previous one."""
    global _DEFAULT_ENGINE
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous


@contextmanager
def use_engine(engine: SweepEngine) -> Iterator[SweepEngine]:
    """Scope ``engine`` as the default for the duration of a ``with`` block."""
    previous = set_default_engine(engine)
    try:
        yield engine
    finally:
        set_default_engine(previous)
