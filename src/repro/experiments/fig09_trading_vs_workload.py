"""Fig. 9 — carbon trading volume versus inference workload.

The paper shows that our approach's net allowance purchases track the
workload (more traffic, more emissions, more purchases), while UCB-Ran and
UCB-TH trade obliviously to it; it also compares the normalized unit cost of
carbon purchases, where our approach is lowest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.engine import SweepEngine
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_many
from repro.experiments.settings import default_config, default_seeds
from repro.sim.scenario import build_scenario

__all__ = ["Fig09Result", "run", "format_result", "main"]

ALGORITHMS = (("Ours", "Ours"), ("UCB", "Ran"), ("UCB", "TH"))


@dataclass(frozen=True)
class Fig09Result:
    """Workload/net-purchase series and unit purchase costs per algorithm."""

    arrivals: np.ndarray  # mean total arrivals per slot
    net_purchases: dict[str, np.ndarray]  # label -> mean per-slot net purchase
    unit_costs: dict[str, float]  # label -> mean cost per net allowance

    def workload_correlation(self, label: str) -> float:
        """Pearson correlation of net purchases with the workload."""
        series = self.net_purchases[label]
        if np.std(series) == 0 or np.std(self.arrivals) == 0:
            return 0.0
        return float(np.corrcoef(self.arrivals, series)[0, 1])


def run(
    fast: bool = True,
    seeds: list[int] | None = None,
    engine: SweepEngine | None = None,
) -> Fig09Result:
    """Execute the Fig. 9 experiment."""
    config = default_config(fast)
    scenario = build_scenario(config)
    seeds = default_seeds(fast) if seeds is None else seeds

    arrivals: np.ndarray | None = None
    net_purchases: dict[str, np.ndarray] = {}
    unit_costs: dict[str, float] = {}
    for sel, trade in ALGORITHMS:
        label = "Ours" if sel == trade == "Ours" else f"{sel}-{trade}"
        results = run_many(scenario, sel, trade, seeds, label=label, engine=engine)
        net_purchases[label] = np.mean(
            [r.net_purchase_series() for r in results], axis=0
        )
        per_seed = [r.unit_purchase_cost() for r in results]
        finite = [u for u in per_seed if not np.isnan(u)]
        unit_costs[label] = float(np.mean(finite)) if finite else float("nan")
        if arrivals is None:
            arrivals = np.mean([r.arrivals for r in results], axis=0)
    assert arrivals is not None
    return Fig09Result(
        arrivals=arrivals, net_purchases=net_purchases, unit_costs=unit_costs
    )


def format_result(result: Fig09Result) -> str:
    """Correlation with workload and unit purchase cost per algorithm."""
    rows = []
    for label in result.net_purchases:
        rows.append(
            [
                label,
                result.workload_correlation(label),
                result.unit_costs[label],
            ]
        )
    rows.sort(key=lambda r: r[2])
    return format_table(
        ["algorithm", "corr(net purchase, workload)", "unit purchase cost"],
        rows,
        title="Fig. 9 — trading volume vs workload",
    )


def main(fast: bool = True) -> Fig09Result:
    """Run and print the experiment."""
    result = run(fast=fast)
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
