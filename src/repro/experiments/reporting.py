"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

import math

__all__ = ["format_table", "format_value"]


def format_value(value, precision: int = 3) -> str:
    """Human-friendly scalar formatting."""
    if isinstance(value, str):
        return value
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    try:
        x = float(value)
    except (TypeError, ValueError):
        return str(value)
    if math.isnan(x):
        return "nan"
    if x != 0 and (abs(x) >= 1e6 or abs(x) < 10 ** (-precision)):
        return f"{x:.{precision}e}"
    return f"{x:.{precision}f}"


def format_table(
    headers: list[str], rows: list[list], title: str | None = None, precision: int = 3
) -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise ValueError("headers must be non-empty")
    rendered = [[format_value(cell, precision) for cell in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in rendered)) if rendered else len(headers[j])
        for j in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(widths[j]) for j, h in enumerate(headers)))
    lines.append(sep)
    for row in rendered:
        lines.append(" | ".join(row[j].rjust(widths[j]) for j in range(len(headers))))
    return "\n".join(lines)
