"""Fig. 4 — normalized total cost versus the number of edges.

The paper scales the system from 10 to 50 edges and reports that our
approach always incurs the lowest cost, with average reductions of 21-55%
against the eight plot combos.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.engine import SweepEngine
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_many, run_offline_many
from repro.experiments.settings import PLOT_COMBOS, default_config, default_seeds
from repro.metrics.summary import summarize_many
from repro.sim.scenario import build_scenario

__all__ = ["Fig04Result", "run", "format_result", "main"]

PAPER_EDGE_COUNTS = (10, 20, 30, 40, 50)
FAST_EDGE_COUNTS = (5, 10, 15)


@dataclass(frozen=True)
class Fig04Result:
    """Mean total cost per (algorithm, edge count)."""

    edge_counts: tuple[int, ...]
    costs: dict[str, list[float]]

    def reductions_vs(self, label: str = "Ours") -> dict[str, float]:
        """Average cost reduction of ``label`` against each other algorithm."""
        ours = np.asarray(self.costs[label])
        out = {}
        for other, values in self.costs.items():
            if other in (label, "Offline"):
                continue
            other_arr = np.asarray(values)
            out[other] = float(np.mean(1.0 - ours / other_arr))
        return out


def run(
    fast: bool = True,
    seeds: list[int] | None = None,
    edge_counts: tuple[int, ...] | None = None,
    combos: tuple[tuple[str, str], ...] | None = None,
    engine: SweepEngine | None = None,
) -> Fig04Result:
    """Execute the Fig. 4 sweep."""
    seeds = default_seeds(fast) if seeds is None else seeds
    edge_counts = (FAST_EDGE_COUNTS if fast else PAPER_EDGE_COUNTS) if edge_counts is None else edge_counts
    combos = PLOT_COMBOS if combos is None else combos

    labels = ["Ours"] + [f"{s}-{t}" for s, t in combos] + ["Offline"]
    costs: dict[str, list[float]] = {label: [] for label in labels}
    for num_edges in edge_counts:
        config = default_config(fast, num_edges=num_edges)
        scenario = build_scenario(config)
        weights = config.weights
        results = run_many(scenario, "Ours", "Ours", seeds, label="Ours", engine=engine)
        costs["Ours"].append(summarize_many(results, weights).total_cost)
        for sel, trade in combos:
            label = f"{sel}-{trade}"
            results = run_many(scenario, sel, trade, seeds, label=label, engine=engine)
            costs[label].append(summarize_many(results, weights).total_cost)
        offline = run_offline_many(scenario, seeds, engine=engine)
        costs["Offline"].append(summarize_many(offline, weights, label="Offline").total_cost)
    return Fig04Result(edge_counts=tuple(edge_counts), costs=costs)


def format_result(result: Fig04Result) -> str:
    """Total cost per edge count, normalized by the worst algorithm."""
    top = max(max(v) for v in result.costs.values())
    rows = []
    for label, values in sorted(result.costs.items(), key=lambda kv: kv[1][-1]):
        rows.append([label] + [v / top for v in values])
    headers = ["algorithm"] + [f"I={i}" for i in result.edge_counts]
    table = format_table(headers, rows, title="Fig. 4 — normalized total cost vs edges")
    reductions = result.reductions_vs()
    lines = [table, "", "Average reduction of Ours vs:"]
    for label, red in sorted(reductions.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {label:12s} {100 * red:5.1f}%")
    return "\n".join(lines)


def main(fast: bool = True) -> Fig04Result:
    """Run and print the experiment."""
    result = run(fast=fast)
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
