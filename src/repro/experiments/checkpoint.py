"""Sweep checkpoints: a crash-safe journal of completed sweep cells.

A checkpoint is a JSONL file with one self-verifying entry per completed
cell — the cell's content-addressed key, an integrity digest, and the
serialized result.  The engine appends an entry the moment a cell
completes (open/append/close per entry, so a kill between cells loses
nothing), and on construction the journal is replayed tolerantly:
truncated or corrupted trailing lines — the signature of a process killed
mid-write — are skipped rather than fatal, so an interrupted ``run_all``
resumes from exactly the cells whose entries landed intact.

Unlike the :class:`~repro.experiments.cache.ResultCache` (a shared
content-addressed store meant to live across runs), a checkpoint is a
per-sweep journal: one file, ordered by completion, cheap to delete when
the sweep finishes.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.sim.io import result_from_dict, result_to_dict
from repro.sim.results import SimulationResult

__all__ = ["SweepCheckpoint"]


class SweepCheckpoint:
    """Append-only journal mapping cell keys to completed results.

    Parameters
    ----------
    path:
        The journal file.  Created (with parents) on first append; an
        existing file is replayed at construction, skipping corrupt lines.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._payloads: dict[str, dict] = {}
        self.corrupt_lines = 0
        self._replay()

    def _replay(self) -> None:
        """Load every intact entry from an existing journal file."""
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                key = entry["key"]
                payload = entry["payload"]
                canonical = json.dumps(
                    payload, sort_keys=True, separators=(",", ":")
                )
                digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
                if digest != entry["payload_sha256"]:
                    raise ValueError("checkpoint entry digest mismatch")
            except (KeyError, TypeError, ValueError):
                # A line cut short by a kill mid-append, or bit rot: skip
                # it — the cell simply re-executes.
                self.corrupt_lines += 1
                continue
            self._payloads[key] = payload

    def load(self, key: str) -> SimulationResult | None:
        """The checkpointed result for ``key``, or ``None`` if not recorded."""
        payload = self._payloads.get(key)
        if payload is None:
            return None
        return result_from_dict(payload)

    def append(self, key: str, result: SimulationResult) -> None:
        """Journal one completed cell (durable before this returns)."""
        payload = result_to_dict(result)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        line = json.dumps(
            {"key": key, "payload_sha256": digest, "payload": payload},
            sort_keys=True,
            separators=(",", ":"),
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line)
            handle.write("\n")
        self._payloads[key] = payload

    def __contains__(self, key: str) -> bool:
        return key in self._payloads

    def __len__(self) -> int:
        return len(self._payloads)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SweepCheckpoint({str(self.path)!r}, entries={len(self)}, "
            f"corrupt_lines={self.corrupt_lines})"
        )
