"""CSV export of figure results.

Every ``figNN`` result object can be flattened into ``(headers, rows)`` and
written as CSV, so the figures can be re-plotted with any external tool.

    from repro.experiments import fig10_regret, export
    result = fig10_regret.run(fast=True)
    export.write_csv(export.figure_rows(result), "fig10.csv")
"""

from __future__ import annotations

import csv
from functools import singledispatch
from pathlib import Path

import numpy as np

from repro.experiments.fig03_cumulative_cost import Fig03Result
from repro.experiments.fig04_total_cost_vs_edges import Fig04Result
from repro.experiments.fig05_switching_weight import Fig05Result
from repro.experiments.fig06_emission_rate import Fig06Result
from repro.experiments.fig07_carbon_cap import Fig07Result
from repro.experiments.fig08_selection_histogram import Fig08Result
from repro.experiments.fig09_trading_vs_workload import Fig09Result
from repro.experiments.fig10_regret import Fig10Result
from repro.experiments.fig11_fit import Fig11Result
from repro.experiments.fig12_accuracy_mnist import Fig12Result
from repro.experiments.fig14_runtime import Fig14Result
from repro.experiments.ext_delay import ExtDelayResult
from repro.experiments.ext_forecast import ExtForecastResult
from repro.experiments.ext_heterogeneity import ExtHeterogeneityResult

__all__ = ["figure_rows", "write_csv"]

Table = tuple[list[str], list[list]]


@singledispatch
def figure_rows(result) -> Table:
    """Flatten a figure result into ``(headers, rows)`` for CSV export."""
    raise TypeError(f"no CSV exporter registered for {type(result).__name__}")


@figure_rows.register
def _(result: Fig03Result) -> Table:
    headers = ["slot"] + list(result.series)
    rows = []
    for t in range(result.horizon):
        rows.append([t] + [float(result.series[label][t]) for label in result.series])
    return headers, rows


def _sweep_table(axis_name: str, axis, costs: dict[str, list[float]]) -> Table:
    headers = [axis_name] + list(costs)
    rows = []
    for j, value in enumerate(axis):
        rows.append([value] + [float(costs[label][j]) for label in costs])
    return headers, rows


@figure_rows.register
def _(result: Fig04Result) -> Table:
    return _sweep_table("num_edges", result.edge_counts, result.costs)


@figure_rows.register
def _(result: Fig05Result) -> Table:
    return _sweep_table("switching_weight", result.sweep, result.costs)


@figure_rows.register
def _(result: Fig06Result) -> Table:
    return _sweep_table("emission_rate", result.rates, result.costs)


@figure_rows.register
def _(result: Fig07Result) -> Table:
    return _sweep_table("carbon_cap", result.caps, result.costs)


@figure_rows.register
def _(result: Fig08Result) -> Table:
    headers = ["model", "expected_loss", "ours_selections", "offline_choice", "greedy_choice"]
    rows = []
    for n, name in enumerate(result.model_names):
        rows.append(
            [
                name,
                float(result.expected_losses[n]),
                float(result.ours_counts[n]),
                int(n == result.offline_choice),
                int(n == result.greedy_choice),
            ]
        )
    return headers, rows


@figure_rows.register
def _(result: Fig09Result) -> Table:
    headers = ["slot", "arrivals"] + [f"net_purchase_{k}" for k in result.net_purchases]
    rows = []
    for t in range(result.arrivals.size):
        rows.append(
            [t, float(result.arrivals[t])]
            + [float(series[t]) for series in result.net_purchases.values()]
        )
    return headers, rows


@figure_rows.register
def _(result: Fig10Result) -> Table:
    return _sweep_table("horizon", result.horizons, result.regrets)


@figure_rows.register
def _(result: Fig11Result) -> Table:
    return _sweep_table("horizon", result.horizons, result.fits)


@figure_rows.register
def _(result: Fig12Result) -> Table:
    headers = ["slot"] + list(result.accuracy)
    rows = []
    for t in range(result.horizon):
        rows.append(
            [t] + [float(series[t]) for series in result.accuracy.values()]
        )
    return headers, rows


@figure_rows.register
def _(result: Fig14Result) -> Table:
    headers = ["num_edges", "alg1_seconds_per_slot", "alg2_seconds_per_slot"]
    rows = [
        [i, a1, a2]
        for i, a1, a2 in zip(
            result.edge_counts,
            result.alg1_seconds_per_slot,
            result.alg2_seconds_per_slot,
        )
    ]
    return headers, rows


@figure_rows.register
def _(result: ExtForecastResult) -> Table:
    headers = [
        "regime",
        "unit_cost_plain",
        "unit_cost_forecast",
        "fit_plain",
        "fit_forecast",
    ]
    rows = [
        [
            regime,
            result.unit_cost_plain[j],
            result.unit_cost_forecast[j],
            result.fit_plain[j],
            result.fit_forecast[j],
        ]
        for j, regime in enumerate(result.regimes)
    ]
    return headers, rows


@figure_rows.register
def _(result: ExtDelayResult) -> Table:
    headers = ["label_delay", "total_cost", "accuracy", "switching_cost"]
    rows = [
        [d, result.total_cost[j], result.accuracy[j], result.switching_cost[j]]
        for j, d in enumerate(result.delays)
    ]
    return headers, rows


@figure_rows.register
def _(result: ExtHeterogeneityResult) -> Table:
    headers = ["horizon", "oracle_fixed", "ours", "global_fixed"]
    rows = [
        [h, result.oracle_fixed[j], result.ours[j], result.global_fixed[j]]
        for j, h in enumerate(result.horizons)
    ]
    return headers, rows


def write_csv(table: Table, path: str | Path) -> Path:
    """Write an exported table to ``path``; returns the path."""
    headers, rows = table
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(
                [f"{v:.10g}" if isinstance(v, (float, np.floating)) else v for v in row]
            )
    return path
