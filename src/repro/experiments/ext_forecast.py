"""Extension experiment — price forecasting (paper future work #1).

Compares the paper's Algorithm 2 against the forecast-driven variant
(:class:`repro.forecast.ForecastCarbonTrading`) across price predictability
levels: the more mean-reverting (predictable) the allowance market, the more
the forecaster should save on the effective price paid per allowance, while
both variants keep the neutrality violation small.

Not a paper figure — run via ``python -m repro.experiments.ext_forecast``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.core import OnlineCarbonTrading, OnlineModelSelection
from repro.experiments.reporting import format_table
from repro.experiments.settings import default_config, default_seeds
from repro.forecast.trading import ForecastCarbonTrading
from repro.sim import Simulator, build_scenario
from repro.traces.carbon_prices import CarbonPriceModel
from repro.utils.rng import RngFactory, spawn_generator

__all__ = ["ExtForecastResult", "run", "format_result", "main"]

#: (label, mean-reversion kappa, volatility sigma) price regimes.
REGIMES = (
    ("random-walk", 0.01, 0.45),
    ("paper-default", 0.08, 0.35),
    ("mean-reverting", 0.45, 0.55),
)


@dataclass(frozen=True)
class ExtForecastResult:
    """Per-regime unit costs and fits of both trading variants."""

    regimes: tuple[str, ...]
    unit_cost_plain: list[float]
    unit_cost_forecast: list[float]
    fit_plain: list[float]
    fit_forecast: list[float]

    def saving(self, index: int) -> float:
        """Relative unit-cost saving of forecasting in regime ``index``."""
        return 1.0 - self.unit_cost_forecast[index] / self.unit_cost_plain[index]


def _run_variant(scenario, policy_factory, seeds) -> tuple[float, float]:
    units, fits = [], []
    for seed in seeds:
        rng = RngFactory(seed)
        selection = [
            OnlineModelSelection(
                scenario.num_models,
                scenario.horizon,
                float(scenario.effective_switch_costs()[i]),
                rng.get(f"sel-{i}"),
            )
            for i in range(scenario.num_edges)
        ]
        result = Simulator(
            scenario, selection, policy_factory(), run_seed=seed
        ).run()
        unit = result.unit_purchase_cost()
        if not np.isnan(unit):
            units.append(unit)
        fits.append(result.final_fit())
    return float(np.mean(units)), float(np.mean(fits))


def run(fast: bool = True, seeds: list[int] | None = None) -> ExtForecastResult:
    """Execute the forecasting comparison across price regimes."""
    seeds = default_seeds(fast) if seeds is None else seeds
    config = default_config(fast)
    base = build_scenario(config)

    labels, up, uf, fp, ff = [], [], [], [], []
    for label, kappa, sigma in REGIMES:
        prices = CarbonPriceModel(kappa=kappa, sigma=sigma).generate(
            config.horizon, spawn_generator(config.seed, f"prices-{label}")
        )
        scenario = dataclasses.replace(base, prices=prices)
        unit_plain, fit_plain = _run_variant(scenario, OnlineCarbonTrading, seeds)
        unit_forecast, fit_forecast = _run_variant(
            scenario, ForecastCarbonTrading, seeds
        )
        labels.append(label)
        up.append(unit_plain)
        uf.append(unit_forecast)
        fp.append(fit_plain)
        ff.append(fit_forecast)
    return ExtForecastResult(
        regimes=tuple(labels),
        unit_cost_plain=up,
        unit_cost_forecast=uf,
        fit_plain=fp,
        fit_forecast=ff,
    )


def format_result(result: ExtForecastResult) -> str:
    """Unit purchase cost and fit per regime and variant."""
    rows = []
    for j, regime in enumerate(result.regimes):
        rows.append(
            [
                regime,
                result.unit_cost_plain[j],
                result.unit_cost_forecast[j],
                100 * result.saving(j),
                result.fit_plain[j],
                result.fit_forecast[j],
            ]
        )
    return format_table(
        [
            "price regime",
            "unit cost (Alg 2)",
            "unit cost (+forecast)",
            "saving %",
            "fit (Alg 2)",
            "fit (+forecast)",
        ],
        rows,
        title="Extension — price forecasting across market regimes",
        precision=2,
    )


def main(fast: bool = True) -> ExtForecastResult:
    """Run and print the extension experiment."""
    result = run(fast=fast)
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
