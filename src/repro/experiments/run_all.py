"""Run every paper experiment and print its table.

Usage::

    python -m repro.experiments.run_all          # fast mode, all figures
    python -m repro.experiments.run_all --full   # paper-scale (slow)
    python -m repro.experiments.run_all fig04 fig10   # a subset
    python -m repro.experiments.run_all --ext    # also the extension studies
    python -m repro.experiments.run_all --workers 4   # parallel seed sweeps

Seed sweeps route through a :class:`~repro.experiments.engine.SweepEngine`:
``--workers N`` fans cells over a process pool, and completed cells land in
an on-disk result cache (default ``.repro_cache/``; relocate with
``--cache DIR`` or disable with ``--no-cache``) so repeated runs skip
simulation entirely.  Parallel and cached runs are bit-identical to serial
ones — every cell derives all randomness from its own seed.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

from repro.experiments import (
    ext_delay,
    ext_forecast,
    ext_heterogeneity,
    fig03_cumulative_cost,
    fig04_total_cost_vs_edges,
    fig05_switching_weight,
    fig06_emission_rate,
    fig07_carbon_cap,
    fig08_selection_histogram,
    fig09_trading_vs_workload,
    fig10_regret,
    fig11_fit,
    fig12_accuracy_mnist,
    fig13_accuracy_cifar,
    fig14_runtime,
)
from repro.experiments.cache import ResultCache
from repro.experiments.checkpoint import SweepCheckpoint
from repro.experiments.engine import SweepEngine, use_engine
from repro.experiments.scenario_pool import ScenarioPool
from repro.faults import load_plan

__all__ = [
    "DEFAULT_CACHE_DIR",
    "EXPERIMENTS",
    "EXTENSIONS",
    "build_parser",
    "main",
    "make_engine",
]

EXPERIMENTS = {
    "fig03": fig03_cumulative_cost,
    "fig04": fig04_total_cost_vs_edges,
    "fig05": fig05_switching_weight,
    "fig06": fig06_emission_rate,
    "fig07": fig07_carbon_cap,
    "fig08": fig08_selection_histogram,
    "fig09": fig09_trading_vs_workload,
    "fig10": fig10_regret,
    "fig11": fig11_fit,
    "fig12": fig12_accuracy_mnist,
    "fig13": fig13_accuracy_cifar,
    "fig14": fig14_runtime,
}

#: Beyond-the-paper studies (future work + robustness); run with --ext or by name.
EXTENSIONS = {
    "ext_forecast": ext_forecast,
    "ext_delay": ext_delay,
    "ext_heterogeneity": ext_heterogeneity,
}

#: Where sweep results land unless ``--cache DIR`` / ``--no-cache`` says otherwise.
DEFAULT_CACHE_DIR = ".repro_cache"


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the experiment suite."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments.run_all",
        description="run the paper-figure experiments",
    )
    parser.add_argument("figures", nargs="*",
                        help="e.g. fig10 fig11 (default: all paper figures)")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale settings (slow)")
    parser.add_argument("--ext", action="store_true",
                        help="also run the extension studies")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="process-pool size for seed sweeps (1 = serial)")
    parser.add_argument("--cache", metavar="DIR", default=DEFAULT_CACHE_DIR,
                        help="result-cache directory "
                             f"(default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache entirely")
    parser.add_argument("--faults", metavar="PLAN.json", default=None,
                        help="fault plan applied to every sweep cell "
                             "(JSON, see repro.faults)")
    parser.add_argument("--checkpoint", metavar="PATH", default=None,
                        help="sweep-checkpoint journal; completed cells are "
                             "journaled there and skipped on resume")
    return parser


def make_engine(args: argparse.Namespace) -> SweepEngine:
    """The engine described by parsed ``--workers``/``--cache`` options."""
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    cache = None if args.no_cache else ResultCache(args.cache)
    faults = None
    if getattr(args, "faults", None):
        faults = load_plan(args.faults)
    checkpoint = None
    if getattr(args, "checkpoint", None):
        checkpoint = SweepCheckpoint(args.checkpoint)
    return SweepEngine(
        workers=args.workers, cache=cache, faults=faults, checkpoint=checkpoint
    )


def main(argv: list[str] | None = None) -> None:
    """Run the selected (default: all) experiments and print tables."""
    args = build_parser().parse_args(sys.argv[1:] if argv is None else argv)
    fast = not args.full
    registry = {**EXPERIMENTS, **EXTENSIONS}
    selected = list(args.figures)
    if not selected:
        selected = list(EXPERIMENTS)
        if args.ext:
            selected += list(EXTENSIONS)
    unknown = [name for name in selected if name not in registry]
    if unknown:
        raise SystemExit(f"unknown experiments: {unknown}; known: {sorted(registry)}")
    engine = make_engine(args)
    mode = "fast" if fast else "paper-scale"
    print(f"Running {len(selected)} experiments ({mode} mode, "
          f"workers={engine.workers}, "
          f"cache={'off' if engine.cache is None else engine.cache.directory})\n")
    with tempfile.TemporaryDirectory(prefix="repro-scenarios-") as pool_dir:
        if engine.workers > 1 and engine.scenario_pool is None:
            # One content-addressed pool for the whole invocation: figures
            # that build equal scenarios share a single materialization,
            # and pool workers resolve each one once per process.
            engine.scenario_pool = ScenarioPool(pool_dir)
        with use_engine(engine):
            for name in selected:
                module = registry[name]
                start = time.perf_counter()
                module.main(fast=fast)
                print(f"[{name} finished in "
                      f"{time.perf_counter() - start:.1f}s]\n")
    stats = engine.stats
    if stats.cells:
        print(f"sweep cells: {stats.cells} total, {stats.executed} executed, "
              f"{stats.cache_hits} cache hits")


if __name__ == "__main__":
    main()
