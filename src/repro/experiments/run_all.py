"""Run every paper experiment and print its table.

Usage::

    python -m repro.experiments.run_all          # fast mode, all figures
    python -m repro.experiments.run_all --full   # paper-scale (slow)
    python -m repro.experiments.run_all fig04 fig10   # a subset
    python -m repro.experiments.run_all --ext    # also the extension studies
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    ext_delay,
    ext_forecast,
    ext_heterogeneity,
    fig03_cumulative_cost,
    fig04_total_cost_vs_edges,
    fig05_switching_weight,
    fig06_emission_rate,
    fig07_carbon_cap,
    fig08_selection_histogram,
    fig09_trading_vs_workload,
    fig10_regret,
    fig11_fit,
    fig12_accuracy_mnist,
    fig13_accuracy_cifar,
    fig14_runtime,
)

__all__ = ["EXPERIMENTS", "EXTENSIONS", "main"]

EXPERIMENTS = {
    "fig03": fig03_cumulative_cost,
    "fig04": fig04_total_cost_vs_edges,
    "fig05": fig05_switching_weight,
    "fig06": fig06_emission_rate,
    "fig07": fig07_carbon_cap,
    "fig08": fig08_selection_histogram,
    "fig09": fig09_trading_vs_workload,
    "fig10": fig10_regret,
    "fig11": fig11_fit,
    "fig12": fig12_accuracy_mnist,
    "fig13": fig13_accuracy_cifar,
    "fig14": fig14_runtime,
}

#: Beyond-the-paper studies (future work + robustness); run with --ext or by name.
EXTENSIONS = {
    "ext_forecast": ext_forecast,
    "ext_delay": ext_delay,
    "ext_heterogeneity": ext_heterogeneity,
}


def main(argv: list[str] | None = None) -> None:
    """Run the selected (default: all) experiments and print tables."""
    args = sys.argv[1:] if argv is None else argv
    fast = "--full" not in args
    registry = {**EXPERIMENTS, **EXTENSIONS}
    selected = [a for a in args if not a.startswith("--")]
    if not selected:
        selected = list(EXPERIMENTS)
        if "--ext" in args:
            selected += list(EXTENSIONS)
    unknown = [name for name in selected if name not in registry]
    if unknown:
        raise SystemExit(f"unknown experiments: {unknown}; known: {sorted(registry)}")
    mode = "fast" if fast else "paper-scale"
    print(f"Running {len(selected)} experiments ({mode} mode)\n")
    for name in selected:
        module = registry[name]
        start = time.perf_counter()
        module.main(fast=fast)
        print(f"[{name} finished in {time.perf_counter() - start:.1f}s]\n")


if __name__ == "__main__":
    main()
