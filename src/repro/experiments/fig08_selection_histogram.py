"""Fig. 8 — number of model selections versus expected loss (one edge).

The paper picks one edge and plots how often each model was selected: our
approach selects low-loss models increasingly often, Offline always hosts
the minimum-loss(+latency) model, and Greedy always hosts the lowest-energy
model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.engine import SweepEngine
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_many
from repro.experiments.settings import default_config, default_seeds
from repro.offline import best_fixed_models
from repro.sim.scenario import build_scenario

__all__ = ["Fig08Result", "run", "format_result", "main"]


@dataclass(frozen=True)
class Fig08Result:
    """Per-model statistics on the inspected edge."""

    edge: int
    model_names: list[str]
    expected_losses: np.ndarray
    ours_counts: np.ndarray  # mean selections per model (over seeds)
    offline_choice: int
    greedy_choice: int

    def loss_count_correlation(self) -> float:
        """Pearson correlation between expected loss and selection count.

        Should be strongly negative: lower loss, more selections.
        """
        return float(np.corrcoef(self.expected_losses, self.ours_counts)[0, 1])


def run(
    fast: bool = True,
    seeds: list[int] | None = None,
    edge: int = 0,
    engine: SweepEngine | None = None,
) -> Fig08Result:
    """Execute the Fig. 8 experiment."""
    config = default_config(fast)
    scenario = build_scenario(config)
    seeds = default_seeds(fast) if seeds is None else seeds
    if not 0 <= edge < scenario.num_edges:
        raise ValueError(f"edge {edge} outside [0, {scenario.num_edges})")

    results = run_many(scenario, "Ours", "Ours", seeds, label="Ours", engine=engine)
    counts = np.zeros(scenario.num_models)
    for result in results:
        values, freqs = np.unique(result.selections[:, edge], return_counts=True)
        counts[values] += freqs
    counts /= len(seeds)

    offline_models = best_fixed_models(scenario.expected_losses, scenario.latencies)
    greedy_choice = int(np.argmin(scenario.energy.phi_kwh))
    return Fig08Result(
        edge=edge,
        model_names=[p.name for p in scenario.profiles],
        expected_losses=scenario.expected_losses,
        ours_counts=counts,
        offline_choice=int(offline_models[edge]),
        greedy_choice=greedy_choice,
    )


def format_result(result: Fig08Result) -> str:
    """Per-model table sorted by expected loss."""
    order = np.argsort(result.expected_losses)
    rows = []
    for n in order:
        marks = []
        if n == result.offline_choice:
            marks.append("Offline")
        if n == result.greedy_choice:
            marks.append("Greedy")
        rows.append(
            [
                result.model_names[n],
                float(result.expected_losses[n]),
                float(result.ours_counts[n]),
                ",".join(marks) if marks else "-",
            ]
        )
    table = format_table(
        ["model", "E[loss]", "ours selections", "fixed choice of"],
        rows,
        title=f"Fig. 8 — selections vs expected loss (edge {result.edge})",
    )
    corr = result.loss_count_correlation()
    return f"{table}\n\nloss/selections correlation: {corr:.3f} (expect strongly negative)"


def main(fast: bool = True) -> Fig08Result:
    """Run and print the experiment."""
    result = run(fast=fast)
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
