"""Fig. 14 — per-slot execution time of Algorithms 1 and 2 versus edges.

The paper times both algorithms on a commodity CPU: at 50 edges Algorithm 1
finishes in ~61 s *per horizon* and Algorithm 2 in ~0.21 s, both far below
the 15-minute slot length.  We time the algorithms' own decision/update
calls directly (excluding simulator bookkeeping): Algorithm 1's cost grows
linearly with the number of edges, Algorithm 2's stays flat (its decision
space is two scalars regardless of system size).

Timing goes through :meth:`repro.obs.Tracer.timer` — each slot is one entry
of an accumulating :class:`~repro.obs.metrics.Timer`, so the reported
per-slot seconds are the timer's ``mean_seconds`` and the raw totals stay
inspectable via ``tracer.metrics_snapshot()``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import format_table
from repro.experiments.settings import default_config
from repro.obs import Timer, Tracer
from repro.policies import make_selection_policies, make_trading_policy
from repro.policies.trading import TradeDecision, TradingContext
from repro.sim.scenario import build_scenario
from repro.spec import RunSpec
from repro.utils.rng import RngFactory

__all__ = ["Fig14Result", "run", "format_result", "main"]

PAPER_EDGE_COUNTS = (10, 20, 30, 40, 50)
FAST_EDGE_COUNTS = (5, 10, 20)


def _spec_policies(config, scenario):
    """Policies wired exactly as ``Simulator.from_spec`` would wire them.

    The timed algorithm instances come from the :mod:`repro.policies`
    registry with the same RNG stream layout users get, so the measurement
    covers the code path of a real ``RunSpec`` run (not a hand-rolled
    construction that could drift from it).
    """
    spec = RunSpec(scenario=config, selection="Ours", trading="Ours", seed=0)
    rng_factory = RngFactory(spec.seed).child(f"{spec.selection}-{spec.trading}")
    policies = make_selection_policies(spec.selection, scenario, rng_factory)
    trader = make_trading_policy(spec.trading, scenario, rng_factory)
    return policies, trader


@dataclass(frozen=True)
class Fig14Result:
    """Mean per-slot wall time (seconds) of each algorithm per edge count."""

    edge_counts: tuple[int, ...]
    alg1_seconds_per_slot: list[float]
    alg2_seconds_per_slot: list[float]

    def alg1_scales_with_edges(self) -> bool:
        """Algorithm 1 runs once per edge, so its time should grow."""
        return self.alg1_seconds_per_slot[-1] > self.alg1_seconds_per_slot[0]


def _time_algorithm1(num_edges: int, horizon: int, fast: bool, timer: Timer) -> float:
    """Seconds per slot spent in Algorithm 1 select/observe across edges."""
    config = default_config(fast, num_edges=num_edges, horizon=horizon)
    scenario = build_scenario(config)
    policies, _ = _spec_policies(config, scenario)
    loss_rng = RngFactory(0).get("losses")
    losses = loss_rng.uniform(0.0, 2.0, size=(horizon, num_edges))
    for t in range(horizon):
        with timer:
            for i, policy in enumerate(policies):
                model = policy.select(t)
                policy.observe(t, model, float(losses[t, i]))
    return timer.mean_seconds


def _time_algorithm2(num_edges: int, horizon: int, fast: bool, timer: Timer) -> float:
    """Seconds per slot spent in Algorithm 2 decide/observe."""
    config = default_config(fast, num_edges=num_edges, horizon=horizon)
    scenario = build_scenario(config)
    _, policy = _spec_policies(config, scenario)
    emissions_rng = RngFactory(1).get("emissions")
    emissions = emissions_rng.uniform(
        0.0, 2.0 * scenario.estimated_slot_emissions(), size=horizon
    )
    for t in range(horizon):
        context = TradingContext(
            t=t,
            horizon=horizon,
            cap=config.carbon_cap_kg,
            buy_price=float(scenario.prices.buy[t]),
            sell_price=float(scenario.prices.sell[t]),
            prev_buy_price=float(scenario.prices.buy[max(t - 1, 0)]),
            prev_sell_price=float(scenario.prices.sell[max(t - 1, 0)]),
            prev_emissions=float(emissions[max(t - 1, 0)]),
            cumulative_emissions=float(emissions[:t].sum()),
            holdings=config.carbon_cap_kg,
            mean_slot_emissions=float(emissions[: max(t, 1)].mean()),
            trade_bound=scenario.trade_bound,
        )
        with timer:
            decision = policy.decide(context)
            decision = TradeDecision(
                buy=min(decision.buy, scenario.trade_bound),
                sell=min(decision.sell, scenario.trade_bound),
            )
            policy.observe(context, decision, float(emissions[t]))
    return timer.mean_seconds


def run(
    fast: bool = True,
    edge_counts: tuple[int, ...] | None = None,
    horizon: int | None = None,
    tracer: Tracer | None = None,
) -> Fig14Result:
    """Execute the runtime measurement.

    Pass a ``tracer`` to keep the per-(algorithm, edge-count) timers — named
    ``alg1/I=<n>`` and ``alg2/I=<n>`` — for inspection after the run.
    """
    edge_counts = (FAST_EDGE_COUNTS if fast else PAPER_EDGE_COUNTS) if edge_counts is None else edge_counts
    horizon = (80 if fast else 160) if horizon is None else horizon
    tracer = Tracer() if tracer is None else tracer
    alg1 = [
        _time_algorithm1(i, horizon, fast, tracer.timer(f"alg1/I={i}"))
        for i in edge_counts
    ]
    alg2 = [
        _time_algorithm2(i, horizon, fast, tracer.timer(f"alg2/I={i}"))
        for i in edge_counts
    ]
    return Fig14Result(
        edge_counts=tuple(edge_counts),
        alg1_seconds_per_slot=alg1,
        alg2_seconds_per_slot=alg2,
    )


def format_result(result: Fig14Result) -> str:
    """Per-slot wall time per algorithm and edge count."""
    rows = [
        ["Algorithm 1 (s/slot)"] + result.alg1_seconds_per_slot,
        ["Algorithm 2 (s/slot)"] + result.alg2_seconds_per_slot,
    ]
    headers = ["algorithm"] + [f"I={i}" for i in result.edge_counts]
    return format_table(
        headers, rows, title="Fig. 14 — per-slot execution time", precision=6
    )


def main(fast: bool = True) -> Fig14Result:
    """Run and print the experiment."""
    result = run(fast=fast)
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
