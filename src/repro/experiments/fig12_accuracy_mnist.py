"""Fig. 12 — per-slot inference accuracy on the MNIST-like stream.

The paper plots the accuracy achieved by the hosted models at each slot.
Greedy-Ran is worst (it optimizes energy only); TINF-Ran and UCB-Ran are
comparable to ours; ours ends closest to Offline.

``fast=True`` substitutes the synthetic profile zoo; ``fast=False`` uses the
trained MNIST-like numpy model zoo (real forward-pass losses).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.engine import SweepEngine
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_many, run_offline_many
from repro.experiments.settings import default_config, default_seeds
from repro.sim.scenario import build_scenario

__all__ = ["Fig12Result", "run", "format_result", "main", "ACCURACY_ALGOS"]

ACCURACY_ALGOS = (("Greedy", "Ran"), ("TINF", "Ran"), ("UCB", "Ran"))

DATASET = "mnist"
TITLE = "Fig. 12 — inference accuracy per slot (MNIST-like)"


@dataclass(frozen=True)
class Fig12Result:
    """Mean per-slot accuracy per algorithm."""

    horizon: int
    accuracy: dict[str, np.ndarray]

    def windowed(self, windows: int = 4) -> dict[str, list[float]]:
        """Mean accuracy over equal windows of the horizon."""
        size = self.horizon // windows
        out = {}
        for label, series in self.accuracy.items():
            out[label] = [
                float(np.nanmean(series[w * size : (w + 1) * size]))
                for w in range(windows)
            ]
        return out

    def final_window_accuracy(self, label: str) -> float:
        """Accuracy over the last quarter of the horizon."""
        return self.windowed()[label][-1]


def run(
    fast: bool = True,
    seeds: list[int] | None = None,
    dataset: str | None = None,
    engine: SweepEngine | None = None,
) -> Fig12Result:
    """Execute the accuracy experiment."""
    config = default_config(fast, dataset=dataset if dataset else ("synthetic" if fast else DATASET))
    scenario = build_scenario(config)
    seeds = default_seeds(fast) if seeds is None else seeds

    accuracy: dict[str, np.ndarray] = {}
    ours = run_many(scenario, "Ours", "Ours", seeds, label="Ours", engine=engine)
    accuracy["Ours"] = np.mean([r.accuracy for r in ours], axis=0)
    for sel, trade in ACCURACY_ALGOS:
        label = f"{sel}-{trade}"
        results = run_many(scenario, sel, trade, seeds, label=label, engine=engine)
        accuracy[label] = np.mean([r.accuracy for r in results], axis=0)
    offline = run_offline_many(scenario, seeds, engine=engine)
    accuracy["Offline"] = np.mean([r.accuracy for r in offline], axis=0)
    return Fig12Result(horizon=config.horizon, accuracy=accuracy)


def format_result(result: Fig12Result, title: str = TITLE) -> str:
    """Accuracy over four equal windows of the horizon."""
    windows = result.windowed()
    rows = [
        [label] + values
        for label, values in sorted(windows.items(), key=lambda kv: -kv[1][-1])
    ]
    headers = ["algorithm", "Q1", "Q2", "Q3", "Q4"]
    return format_table(headers, rows, title=title)


def main(fast: bool = True) -> Fig12Result:
    """Run and print the experiment."""
    result = run(fast=fast)
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
