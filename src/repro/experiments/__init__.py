"""Experiment harness: one module per paper figure (Fig. 3-14).

Each ``figNN_*`` module exposes ``run(fast=True) -> <FigureResult>`` and a
``format_result`` renderer; ``python -m repro.experiments.run_all`` executes
everything and prints the tables recorded in EXPERIMENTS.md.  ``fast=True``
runs a reduced-size configuration (synthetic profiles, fewer seeds) suitable
for CI and benchmarks; ``fast=False`` reproduces the paper-scale settings
with the trained model zoos.

Seed sweeps route through the :class:`~repro.experiments.engine.SweepEngine`
(``--workers N`` parallelism plus an on-disk
:class:`~repro.experiments.cache.ResultCache`), with results bit-identical
to serial uncached runs.
"""

from repro.experiments.cache import ResultCache, cell_key, scenario_fingerprint
from repro.experiments.engine import (
    SweepCell,
    SweepEngine,
    SweepStats,
    get_default_engine,
    set_default_engine,
    use_engine,
)
from repro.experiments.scenario_pool import (
    ScenarioPool,
    ScenarioRef,
    scenario_digest,
)
from repro.experiments.settings import (
    PAPER_COMBOS,
    PLOT_COMBOS,
    default_config,
    default_seeds,
)
from repro.experiments.runner import (
    make_selection_policies,
    make_trading_policy,
    run_combo,
    run_many,
    run_offline,
)

__all__ = [
    "PAPER_COMBOS",
    "PLOT_COMBOS",
    "ResultCache",
    "ScenarioPool",
    "ScenarioRef",
    "SweepCell",
    "SweepEngine",
    "SweepStats",
    "cell_key",
    "default_config",
    "default_seeds",
    "get_default_engine",
    "make_selection_policies",
    "make_trading_policy",
    "run_combo",
    "run_many",
    "run_offline",
    "scenario_digest",
    "scenario_fingerprint",
    "set_default_engine",
    "use_engine",
]
