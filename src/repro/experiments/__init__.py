"""Experiment harness: one module per paper figure (Fig. 3-14).

Each ``figNN_*`` module exposes ``run(fast=True) -> <FigureResult>`` and a
``format_result`` renderer; ``python -m repro.experiments.run_all`` executes
everything and prints the tables recorded in EXPERIMENTS.md.  ``fast=True``
runs a reduced-size configuration (synthetic profiles, fewer seeds) suitable
for CI and benchmarks; ``fast=False`` reproduces the paper-scale settings
with the trained model zoos.
"""

from repro.experiments.settings import (
    PAPER_COMBOS,
    PLOT_COMBOS,
    default_config,
    default_seeds,
)
from repro.experiments.runner import (
    make_selection_policies,
    make_trading_policy,
    run_combo,
    run_many,
    run_offline,
)

__all__ = [
    "PAPER_COMBOS",
    "PLOT_COMBOS",
    "default_config",
    "default_seeds",
    "make_selection_policies",
    "make_trading_policy",
    "run_combo",
    "run_many",
    "run_offline",
]
