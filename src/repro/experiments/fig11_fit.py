"""Fig. 11 — fit (carbon-neutrality violation) versus the horizon length.

The fit is the cumulative positive violation of constraint (1c).  The paper
shows ours starting non-zero but quickly vanishing relative to the horizon
(Theorem 2: ``O(T^{2/3})``), while cap-oblivious traders grow linearly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.engine import SweepEngine
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_many
from repro.experiments.settings import default_config, default_seeds
from repro.sim.scenario import build_scenario

__all__ = ["Fig11Result", "run", "format_result", "main"]

PAPER_HORIZONS = (40, 80, 160, 320, 640)
FAST_HORIZONS = (40, 80, 160)
SWEEP_COMBOS = (
    ("UCB", "Ran"),
    ("UCB", "TH"),
    ("UCB", "LY"),
)


@dataclass(frozen=True)
class Fig11Result:
    """Mean final fit per (algorithm, horizon)."""

    horizons: tuple[int, ...]
    fits: dict[str, list[float]]

    def per_slot_fit(self, label: str) -> np.ndarray:
        """``fit / T`` — vanishes for sub-linear-fit algorithms."""
        return np.asarray(self.fits[label]) / np.asarray(self.horizons)

    def growth_exponent(self, label: str) -> float:
        """Power-law exponent of fit against T (Theorem 2: <= 2/3)."""
        from repro.metrics.regret import power_law_slope

        return power_law_slope(self.horizons, self.fits[label])

    def is_sublinear(self, label: str) -> bool:
        """Whether fit grows slower than linearly in T."""
        return self.growth_exponent(label) < 0.97


def run(
    fast: bool = True,
    seeds: list[int] | None = None,
    horizons: tuple[int, ...] | None = None,
    combos: tuple[tuple[str, str], ...] | None = None,
    engine: SweepEngine | None = None,
) -> Fig11Result:
    """Execute the Fig. 11 sweep."""
    seeds = default_seeds(fast) if seeds is None else seeds
    horizons = (FAST_HORIZONS if fast else PAPER_HORIZONS) if horizons is None else horizons
    combos = SWEEP_COMBOS if combos is None else combos

    all_combos = [("Ours", ("Ours", "Ours"))] + [
        (f"{s}-{t}", (s, t)) for s, t in combos
    ]
    fits: dict[str, list[float]] = {label: [] for label, _ in all_combos}
    for horizon in horizons:
        config = default_config(fast, horizon=horizon)
        scenario = build_scenario(config)
        for label, (sel, trade) in all_combos:
            results = run_many(scenario, sel, trade, seeds, label=label, engine=engine)
            fits[label].append(float(np.mean([r.final_fit() for r in results])))
    return Fig11Result(horizons=tuple(horizons), fits=fits)


def format_result(result: Fig11Result) -> str:
    """Fit per horizon, plus the per-slot fit trend."""
    rows = []
    for label, values in sorted(result.fits.items(), key=lambda kv: kv[1][-1]):
        trend = "sub-linear" if result.is_sublinear(label) else "linear+"
        rows.append([label] + list(values) + [trend])
    headers = ["algorithm"] + [f"T={t}" for t in result.horizons] + ["fit/T trend"]
    return format_table(headers, rows, title="Fig. 11 — fit (neutrality violation) vs horizon")


def main(fast: bool = True) -> Fig11Result:
    """Run and print the experiment."""
    result = run(fast=fast)
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
