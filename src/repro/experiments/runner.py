"""Run orchestration shared by all experiments.

Policy construction is delegated to the :mod:`repro.policies` registry
(``make_selection_policies`` / ``make_trading_policy`` are re-exported here
for backward compatibility, as are the ``SELECTION_NAMES`` /
``TRADING_NAMES`` views).  What remains in this module is run orchestration:
one combination (:func:`run_combo`), seed sweeps (:func:`run_many`), and the
paper's two-pass offline reference (:func:`run_offline`).

Seed sweeps route through :class:`~repro.experiments.engine.SweepEngine`:
pass one explicitly, or configure the process-wide default (see
:func:`repro.experiments.engine.use_engine`) to parallelize and cache every
figure experiment at once.  The default engine is serial and uncached, so
``run_many`` without an engine behaves exactly as it always has.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.plan import FaultPlan
from repro.obs.tracer import Tracer
from repro.offline import (
    FixedSelection,
    NullTrading,
    PrecomputedTrading,
    best_fixed_models,
    solve_offline_trading,
)
from repro.policies import (
    SELECTION_NAMES,
    TRADING_NAMES,
    make_selection_policies,
    make_trading_policy,
)
from repro.sim.results import SimulationResult
from repro.sim.scenario import Scenario
from repro.sim.simulator import Simulator
from repro.spec import RunSpec

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.experiments.engine import SweepEngine

__all__ = [
    "SELECTION_NAMES",
    "TRADING_NAMES",
    "make_selection_policies",
    "make_trading_policy",
    "run_combo",
    "run_many",
    "run_offline",
    "run_offline_many",
]


def run_combo(
    scenario: Scenario,
    selection: str,
    trading: str,
    seed: int,
    label: str | None = None,
    tracer: Tracer | None = None,
    faults: FaultPlan | None = None,
) -> SimulationResult:
    """Simulate one (selection, trading) combination on ``scenario``."""
    spec = RunSpec(
        selection=selection,
        trading=trading,
        seed=seed,
        label=label,
        faults=faults if faults is not None else FaultPlan(),
    )
    return Simulator.from_spec(scenario, spec, tracer=tracer).run()


def run_many(
    scenario: Scenario,
    selection: str,
    trading: str,
    seeds: list[int],
    label: str | None = None,
    engine: "SweepEngine | None" = None,
) -> list[SimulationResult]:
    """Run a combination once per seed (common random numbers per seed).

    Execution goes through ``engine`` (default: the process-wide default
    engine — serial and uncached unless reconfigured), so callers get
    parallelism and result caching without changing this call site.  The
    returned list aligns with ``seeds`` and is bit-identical across worker
    counts and cache hits.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    from repro.experiments.engine import get_default_engine

    if engine is None:
        engine = get_default_engine()
    specs = [
        RunSpec(selection=selection, trading=trading, seed=int(s), label=label)
        for s in seeds
    ]
    return engine.run_specs(scenario, specs)


def run_offline(
    scenario: Scenario, seed: int, faults: FaultPlan | None = None
) -> SimulationResult:
    """The paper's "Offline" reference.

    Pass 1 fixes the posterior-best model per edge and records emissions
    with no trading; the offline trading LP is solved exactly on those
    emissions; pass 2 replays the same run with the optimal trade plan.
    Both passes share the seed, so arrivals and data draws are identical.
    When a fault plan is given, both passes run under it — the offline
    reference then bounds what clairvoyant trading achieves on the same
    degraded infrastructure.
    """
    models = best_fixed_models(scenario.expected_losses, scenario.latencies)
    selection = [FixedSelection(scenario.num_models, int(m)) for m in models]
    pass1 = Simulator(
        scenario,
        selection,
        NullTrading(),
        run_seed=seed,
        label="Offline-pass1",
        faults=faults,
    ).run()
    plan = solve_offline_trading(
        pass1.emissions,
        scenario.prices,
        scenario.config.carbon_cap_kg,
        scenario.trade_bound,
    )
    selection = [FixedSelection(scenario.num_models, int(m)) for m in models]
    return Simulator(
        scenario,
        selection,
        PrecomputedTrading(plan.buy, plan.sell),
        run_seed=seed,
        label="Offline",
        faults=faults,
    ).run()


def run_offline_many(
    scenario: Scenario,
    seeds: list[int],
    engine: "SweepEngine | None" = None,
) -> list[SimulationResult]:
    """Run the "Offline" reference once per seed, through the sweep engine.

    The engine treats each seed as an ``offline`` cell, so offline reference
    runs get the same parallelism, result caching, and checkpointing as the
    online combinations (they used to be the serial tail of every figure).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    from repro.experiments.engine import get_default_engine

    if engine is None:
        engine = get_default_engine()
    return engine.run_offline_many(scenario, seeds)
