"""Policy factories and run orchestration shared by all experiments."""

from __future__ import annotations

import numpy as np

from repro.bandits import (
    EpsilonGreedySelection,
    Exp3Selection,
    GreedySelection,
    RandomSelection,
    TsallisInfSelection,
    UCB1Selection,
    UCB2Selection,
)
from repro.core import OnlineCarbonTrading, OnlineModelSelection
from repro.offline import (
    FixedSelection,
    NullTrading,
    PrecomputedTrading,
    best_fixed_models,
    solve_offline_trading,
)
from repro.policies.selection import SelectionPolicy
from repro.policies.trading import TradingPolicy
from repro.sim.results import SimulationResult
from repro.sim.scenario import Scenario
from repro.sim.simulator import Simulator
from repro.trading import LyapunovTrading, RandomTrading, ThresholdTrading
from repro.traces.carbon_prices import CarbonPriceModel
from repro.utils.rng import RngFactory

__all__ = [
    "SELECTION_NAMES",
    "TRADING_NAMES",
    "make_selection_policies",
    "make_trading_policy",
    "run_combo",
    "run_many",
    "run_offline",
]

SELECTION_NAMES = ("Ours", "Ran", "Greedy", "TINF", "UCB", "UCB1", "EG", "EXP3")
TRADING_NAMES = ("Ours", "Forecast", "Ran", "TH", "LY", "Null")


def make_selection_policies(
    name: str, scenario: Scenario, rng_factory: RngFactory
) -> list[SelectionPolicy]:
    """One per-edge selection policy of the named family."""
    n, t = scenario.num_models, scenario.horizon
    switch_costs = scenario.effective_switch_costs()
    policies: list[SelectionPolicy] = []
    for i in range(scenario.num_edges):
        rng = rng_factory.get(f"selection-{i}")
        if name == "Ours":
            policies.append(OnlineModelSelection(n, t, float(switch_costs[i]), rng))
        elif name == "Ran":
            policies.append(RandomSelection(n, rng))
        elif name == "Greedy":
            policies.append(GreedySelection(n, scenario.energy.phi_kwh))
        elif name == "TINF":
            policies.append(TsallisInfSelection(n, t, rng))
        elif name == "UCB":
            policies.append(UCB2Selection(n))
        elif name == "UCB1":
            policies.append(UCB1Selection(n))
        elif name == "EG":
            policies.append(EpsilonGreedySelection(n, rng))
        elif name == "EXP3":
            policies.append(Exp3Selection(n, rng))
        else:
            raise ValueError(
                f"unknown selection policy {name!r}; expected one of {SELECTION_NAMES}"
            )
    return policies


def make_trading_policy(
    name: str, scenario: Scenario, rng_factory: RngFactory
) -> TradingPolicy:
    """The named trading policy, calibrated to the scenario."""
    if name == "Ours":
        gamma1, gamma2 = OnlineCarbonTrading.step_sizes_for_horizon(scenario.horizon)
        return OnlineCarbonTrading(gamma1=gamma1, gamma2=gamma2)
    if name == "Forecast":
        from repro.forecast.trading import ForecastCarbonTrading

        gamma1, gamma2 = OnlineCarbonTrading.step_sizes_for_horizon(scenario.horizon)
        return ForecastCarbonTrading(gamma1=gamma1, gamma2=gamma2)
    if name == "Ran":
        return RandomTrading(rng_factory.get("trading"))
    if name == "TH":
        model = CarbonPriceModel()
        return ThresholdTrading(
            buy_threshold=model.mean_price,
            sell_threshold=model.sell_ratio * model.mean_price,
        )
    if name == "LY":
        return LyapunovTrading(v=20.0)
    if name == "Null":
        return NullTrading()
    raise ValueError(f"unknown trading policy {name!r}; expected one of {TRADING_NAMES}")


def run_combo(
    scenario: Scenario,
    selection: str,
    trading: str,
    seed: int,
    label: str | None = None,
) -> SimulationResult:
    """Simulate one (selection, trading) combination on ``scenario``."""
    rng_factory = RngFactory(seed).child(f"{selection}-{trading}")
    policies = make_selection_policies(selection, scenario, rng_factory)
    trader = make_trading_policy(trading, scenario, rng_factory)
    simulator = Simulator(
        scenario,
        policies,
        trader,
        run_seed=seed,
        label=label if label is not None else f"{selection}-{trading}",
    )
    return simulator.run()


def run_many(
    scenario: Scenario,
    selection: str,
    trading: str,
    seeds: list[int],
    label: str | None = None,
) -> list[SimulationResult]:
    """Run a combination once per seed (common random numbers per seed)."""
    if not seeds:
        raise ValueError("need at least one seed")
    return [run_combo(scenario, selection, trading, s, label=label) for s in seeds]


def run_offline(scenario: Scenario, seed: int) -> SimulationResult:
    """The paper's "Offline" reference.

    Pass 1 fixes the posterior-best model per edge and records emissions
    with no trading; the offline trading LP is solved exactly on those
    emissions; pass 2 replays the same run with the optimal trade plan.
    Both passes share the seed, so arrivals and data draws are identical.
    """
    models = best_fixed_models(scenario.expected_losses, scenario.latencies)
    selection = [FixedSelection(scenario.num_models, int(m)) for m in models]
    pass1 = Simulator(
        scenario, selection, NullTrading(), run_seed=seed, label="Offline-pass1"
    ).run()
    plan = solve_offline_trading(
        pass1.emissions,
        scenario.prices,
        scenario.config.carbon_cap_kg,
        scenario.trade_bound,
    )
    selection = [FixedSelection(scenario.num_models, int(m)) for m in models]
    return Simulator(
        scenario,
        selection,
        PrecomputedTrading(plan.buy, plan.sell),
        run_seed=seed,
        label="Offline",
    ).run()
