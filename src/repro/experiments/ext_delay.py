"""Extension experiment — sensitivity to delayed label feedback.

The paper's workflow (Fig. 2, Step 2.3) assumes ground-truth labels arrive
within the slot.  In deployments labels often lag (user clicks, human
review).  This experiment sweeps the feedback delay and measures how
Algorithm 1's learning degrades: total cost and accuracy should fall off
gracefully, with switching cost untouched (the block schedule does not
depend on feedback timing).

Not a paper figure — run via ``python -m repro.experiments.ext_delay``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import OnlineCarbonTrading, OnlineModelSelection
from repro.experiments.reporting import format_table
from repro.experiments.settings import default_config, default_seeds
from repro.sim import Simulator, build_scenario
from repro.utils.rng import RngFactory

__all__ = ["ExtDelayResult", "run", "format_result", "main"]

DELAYS = (0, 2, 5, 10, 20)
FAST_DELAYS = (0, 5, 20)


@dataclass(frozen=True)
class ExtDelayResult:
    """Cost/accuracy/switching per feedback delay."""

    delays: tuple[int, ...]
    total_cost: list[float]
    accuracy: list[float]
    switching_cost: list[float]

    def cost_degradation(self) -> float:
        """Relative cost increase from zero delay to the largest delay."""
        return self.total_cost[-1] / self.total_cost[0] - 1.0


def run(fast: bool = True, seeds: list[int] | None = None,
        delays: tuple[int, ...] | None = None) -> ExtDelayResult:
    """Execute the delay sweep."""
    seeds = default_seeds(fast) if seeds is None else seeds
    delays = (FAST_DELAYS if fast else DELAYS) if delays is None else delays
    config = default_config(fast)
    scenario = build_scenario(config)
    weights = config.weights

    costs, accs, switch = [], [], []
    for delay in delays:
        per_cost, per_acc, per_switch = [], [], []
        for seed in seeds:
            rng = RngFactory(seed)
            selection = [
                OnlineModelSelection(
                    scenario.num_models,
                    scenario.horizon,
                    float(scenario.effective_switch_costs()[i]),
                    rng.get(f"sel-{i}"),
                )
                for i in range(scenario.num_edges)
            ]
            result = Simulator(
                scenario,
                selection,
                OnlineCarbonTrading(),
                run_seed=seed,
                label=f"delay-{delay}",
                label_delay=delay,
            ).run()
            per_cost.append(result.total_cost(weights))
            per_acc.append(result.mean_accuracy())
            per_switch.append(float(weights.switching * result.switching_cost.sum()))
        costs.append(float(np.mean(per_cost)))
        accs.append(float(np.mean(per_acc)))
        switch.append(float(np.mean(per_switch)))
    return ExtDelayResult(
        delays=tuple(delays), total_cost=costs, accuracy=accs, switching_cost=switch
    )


def format_result(result: ExtDelayResult) -> str:
    """Cost/accuracy/switching per delay."""
    rows = [
        [d, c, a, s]
        for d, c, a, s in zip(
            result.delays, result.total_cost, result.accuracy, result.switching_cost
        )
    ]
    table = format_table(
        ["label delay (slots)", "total cost", "accuracy", "switching cost"],
        rows,
        title="Extension — delayed label feedback",
        precision=3,
    )
    return (
        f"{table}\n\ncost degradation at max delay: "
        f"{100 * result.cost_degradation():.1f}%"
    )


def main(fast: bool = True) -> ExtDelayResult:
    """Run and print the extension experiment."""
    result = run(fast=fast)
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
