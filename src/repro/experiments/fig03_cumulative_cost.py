"""Fig. 3 — normalized cumulative total cost over time (10 edges).

The paper shows our approach's cumulative cost growing slowest and staying
closest to the offline optimum.  ``run`` produces the per-slot cumulative
cost series (averaged over seeds) for Ours, the plot-combo baselines, and
Offline; ``format_result`` prints them normalized by the worst final cost,
sampled at quarter points of the horizon.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.engine import SweepEngine
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_many, run_offline_many
from repro.experiments.settings import PLOT_COMBOS, default_config, default_seeds
from repro.sim.scenario import build_scenario

__all__ = ["Fig03Result", "run", "format_result", "main"]


@dataclass(frozen=True)
class Fig03Result:
    """Cumulative-cost series per algorithm label."""

    horizon: int
    series: dict[str, np.ndarray]

    def normalized(self) -> dict[str, np.ndarray]:
        """Series divided by the largest final cumulative cost."""
        top = max(float(s[-1]) for s in self.series.values())
        if top <= 0:
            raise ValueError("degenerate result: non-positive worst-case cost")
        return {label: s / top for label, s in self.series.items()}

    def final_costs(self) -> dict[str, float]:
        """Final cumulative cost per algorithm."""
        return {label: float(s[-1]) for label, s in self.series.items()}


def run(
    fast: bool = True,
    seeds: list[int] | None = None,
    combos: tuple[tuple[str, str], ...] | None = None,
    engine: SweepEngine | None = None,
) -> Fig03Result:
    """Execute the Fig. 3 experiment."""
    config = default_config(fast)
    scenario = build_scenario(config)
    seeds = default_seeds(fast) if seeds is None else seeds
    combos = PLOT_COMBOS if combos is None else combos
    weights = config.weights

    series: dict[str, np.ndarray] = {}
    ours = run_many(scenario, "Ours", "Ours", seeds, label="Ours", engine=engine)
    series["Ours"] = np.mean([r.cumulative_cost(weights) for r in ours], axis=0)
    for sel, trade in combos:
        results = run_many(scenario, sel, trade, seeds, engine=engine)
        series[f"{sel}-{trade}"] = np.mean(
            [r.cumulative_cost(weights) for r in results], axis=0
        )
    offline = run_offline_many(scenario, seeds, engine=engine)
    series["Offline"] = np.mean([r.cumulative_cost(weights) for r in offline], axis=0)
    return Fig03Result(horizon=config.horizon, series=series)


def format_result(result: Fig03Result) -> str:
    """Normalized cumulative cost at quarter points of the horizon."""
    marks = [result.horizon // 4 - 1, result.horizon // 2 - 1,
             3 * result.horizon // 4 - 1, result.horizon - 1]
    normalized = result.normalized()
    order = sorted(normalized, key=lambda k: normalized[k][-1])
    rows = [[label] + [float(normalized[label][m]) for m in marks] for label in order]
    headers = ["algorithm"] + [f"t={m + 1}" for m in marks]
    return format_table(
        headers, rows, title="Fig. 3 — normalized cumulative total cost (10 edges)"
    )


def main(fast: bool = True) -> Fig03Result:
    """Run and print the experiment."""
    result = run(fast=fast)
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
