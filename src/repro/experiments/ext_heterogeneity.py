"""Extension experiment — per-edge data heterogeneity.

The paper assumes one global data distribution, so a single best model
serves every edge.  Here the zoo consists of *class specialists* (each
model trained on 3 of the 10 classes, ``repro.sim.zoo.
specialist_trained_profiles``) and every edge draws from its own sharply
skewed class mix, so the best model genuinely differs per edge.  We sweep
the horizon and compare:

* **Ours** — Algorithm 1 independently per edge (the paper's design);
* **GlobalFixed** — the one model best *on average* across edges, hosted
  everywhere (a centralized one-model policy);
* **OracleFixed** — each edge's true best model at hindsight.

GlobalFixed pays a *linear* heterogeneity penalty; the per-edge bandit pays
a *sub-linear* exploration cost, so ours crosses below GlobalFixed once the
horizon amortizes exploration (around T ≈ 2500 slots in the default
setting) and keeps converging toward OracleFixed.

Run via ``python -m repro.experiments.ext_heterogeneity`` (trains the
specialist zoo once, ~30 s).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.core import OnlineModelSelection
from repro.experiments.reporting import format_table
from repro.experiments.settings import default_seeds
from repro.offline import FixedSelection, NullTrading
from repro.sim import ScenarioConfig, Simulator, build_scenario_with_profiles
from repro.utils.rng import RngFactory, spawn_generator

__all__ = ["ExtHeterogeneityResult", "run", "format_result", "main"]

FAST_HORIZONS = (160, 2560)
FULL_HORIZONS = (160, 640, 2560, 5120)


@dataclass(frozen=True)
class ExtHeterogeneityResult:
    """Mean inference cost (expected loss + latency) per strategy/horizon."""

    horizons: tuple[int, ...]
    ours: list[float]
    global_fixed: list[float]
    oracle_fixed: list[float]
    distinct_best_models: int

    def excess_per_slot(self, label: str) -> np.ndarray:
        """Per-edge-slot excess cost over OracleFixed for a strategy."""
        series = {"ours": self.ours, "global": self.global_fixed}[label]
        return (np.asarray(series) - np.asarray(self.oracle_fixed)) / np.asarray(
            self.horizons
        )

    def crossover_reached(self) -> bool:
        """Whether ours undercuts GlobalFixed at the largest horizon."""
        return self.ours[-1] < self.global_fixed[-1]


def _biased_weights(num_edges: int, num_classes: int, seed: int) -> np.ndarray:
    """Dirichlet class mixes, sharply skewed so edges differ."""
    rng = spawn_generator(seed, "edge-bias")
    return rng.dirichlet(np.full(num_classes, 0.25), size=num_edges)


def run(
    fast: bool = True,
    seeds: list[int] | None = None,
    horizons: tuple[int, ...] | None = None,
) -> ExtHeterogeneityResult:
    """Execute the heterogeneity comparison (specialist zoo + biased edges)."""
    from repro.sim.zoo import specialist_trained_profiles, trained_pool

    seeds = (default_seeds(fast)[:2] if fast else default_seeds(fast)) if seeds is None else seeds
    horizons = (FAST_HORIZONS if fast else FULL_HORIZONS) if horizons is None else horizons
    zoo_kwargs = dict(
        zoo_seed=1234,
        n_train=1000 if fast else 2000,
        n_test=2000 if fast else 4000,
        image_size=8,
    )
    profiles = specialist_trained_profiles("mnist", classes_per_model=3, **zoo_kwargs)
    x_pool, y_pool = trained_pool("mnist", **zoo_kwargs)
    num_edges = 4 if fast else 10

    ours_all, global_all, oracle_all = [], [], []
    distinct = 0
    for horizon in horizons:
        config = ScenarioConfig(
            dataset="synthetic",  # profiles supplied explicitly
            num_edges=num_edges,
            horizon=horizon,
            num_models=len(profiles),
            n_train=zoo_kwargs["n_train"],
            n_test=zoo_kwargs["n_test"],
        )
        base = build_scenario_with_profiles(
            config, profiles, x_pool=x_pool, y_pool=y_pool
        )
        num_classes = int(np.max(y_pool)) + 1
        weights = _biased_weights(num_edges, num_classes, config.seed)
        scenario = dataclasses.replace(base, edge_class_weights=weights)

        totals = scenario.expected_losses_per_edge() + scenario.latencies
        oracle_models = np.argmin(totals, axis=1)
        global_model = int(np.argmin(totals.mean(axis=0)))
        distinct = int(np.unique(oracle_models).size)

        def inference_cost(result) -> float:
            return float(
                sum(
                    totals[i, result.selections[:, i]].sum()
                    for i in range(result.num_edges)
                )
            )

        per = {"ours": [], "global": [], "oracle": []}
        for seed in seeds:
            rng = RngFactory(seed)
            policies = [
                OnlineModelSelection(
                    scenario.num_models,
                    scenario.horizon,
                    float(scenario.effective_switch_costs()[i]),
                    rng.get(f"sel-{i}"),
                )
                for i in range(num_edges)
            ]
            per["ours"].append(
                inference_cost(
                    Simulator(scenario, policies, NullTrading(), run_seed=seed).run()
                )
            )
            fixed_global = [
                FixedSelection(scenario.num_models, global_model)
                for _ in range(num_edges)
            ]
            per["global"].append(
                inference_cost(
                    Simulator(scenario, fixed_global, NullTrading(), run_seed=seed).run()
                )
            )
            fixed_oracle = [
                FixedSelection(scenario.num_models, int(m)) for m in oracle_models
            ]
            per["oracle"].append(
                inference_cost(
                    Simulator(scenario, fixed_oracle, NullTrading(), run_seed=seed).run()
                )
            )
        ours_all.append(float(np.mean(per["ours"])))
        global_all.append(float(np.mean(per["global"])))
        oracle_all.append(float(np.mean(per["oracle"])))
    return ExtHeterogeneityResult(
        horizons=tuple(horizons),
        ours=ours_all,
        global_fixed=global_all,
        oracle_fixed=oracle_all,
        distinct_best_models=distinct,
    )


def format_result(result: ExtHeterogeneityResult) -> str:
    """Inference cost per strategy and horizon."""
    rows = []
    for j, horizon in enumerate(result.horizons):
        rows.append(
            [
                horizon,
                result.oracle_fixed[j],
                result.ours[j],
                result.global_fixed[j],
            ]
        )
    table = format_table(
        ["horizon", "OracleFixed", "Ours (per-edge bandit)", "GlobalFixed"],
        rows,
        title="Extension — per-edge heterogeneity (specialist zoo)",
        precision=0,
    )
    verdict = (
        "ours has overtaken GlobalFixed"
        if result.crossover_reached()
        else "ours has not yet amortized exploration at these horizons"
    )
    return (
        f"{table}\n\ndistinct per-edge best models: {result.distinct_best_models}\n"
        f"at T={result.horizons[-1]}: {verdict}"
    )


def main(fast: bool = True) -> ExtHeterogeneityResult:
    """Run and print the extension experiment."""
    result = run(fast=fast)
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
