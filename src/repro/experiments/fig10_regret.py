"""Fig. 10 — regret for P0 versus the horizon length.

Regret is the gap between an algorithm's total cost and the offline
optimum's (both facing identical arrivals and data under common random
numbers).  The paper shows ours with the lowest regret and, matching
Theorem 3, sub-linear growth — the per-slot regret ``regret/T`` shrinks as
``T`` grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.engine import SweepEngine
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_many, run_offline_many
from repro.experiments.settings import default_config, default_seeds
from repro.sim.scenario import build_scenario

__all__ = ["Fig10Result", "run", "format_result", "main", "SWEEP_COMBOS"]

PAPER_HORIZONS = (40, 80, 160, 320, 640)
FAST_HORIZONS = (40, 80, 160)
SWEEP_COMBOS = (
    ("Ran", "LY"),
    ("Greedy", "LY"),
    ("TINF", "LY"),
    ("UCB", "LY"),
)


@dataclass(frozen=True)
class Fig10Result:
    """Mean final regret per (algorithm, horizon)."""

    horizons: tuple[int, ...]
    regrets: dict[str, list[float]]

    def per_slot_regret(self, label: str) -> np.ndarray:
        """``regret / T`` — should decrease for sub-linear algorithms."""
        return np.asarray(self.regrets[label]) / np.asarray(self.horizons)

    def growth_exponent(self, label: str) -> float:
        """Power-law exponent of regret against T (Theorem 3: < 1)."""
        from repro.metrics.regret import power_law_slope

        return power_law_slope(self.horizons, self.regrets[label])

    def is_sublinear(self, label: str) -> bool:
        """Whether regret grows slower than linearly in T."""
        return self.growth_exponent(label) < 0.97


def run(
    fast: bool = True,
    seeds: list[int] | None = None,
    horizons: tuple[int, ...] | None = None,
    combos: tuple[tuple[str, str], ...] | None = None,
    engine: SweepEngine | None = None,
) -> Fig10Result:
    """Execute the Fig. 10 sweep."""
    seeds = default_seeds(fast) if seeds is None else seeds
    horizons = (FAST_HORIZONS if fast else PAPER_HORIZONS) if horizons is None else horizons
    combos = SWEEP_COMBOS if combos is None else combos

    all_combos = [("Ours", ("Ours", "Ours"))] + [
        (f"{s}-{t}", (s, t)) for s, t in combos
    ]
    regrets: dict[str, list[float]] = {label: [] for label, _ in all_combos}
    for horizon in horizons:
        config = default_config(fast, horizon=horizon)
        scenario = build_scenario(config)
        weights = config.weights
        offline_costs = [
            result.total_cost(weights)
            for result in run_offline_many(scenario, seeds, engine=engine)
        ]
        for label, (sel, trade) in all_combos:
            results = run_many(scenario, sel, trade, seeds, label=label, engine=engine)
            gaps = [
                result.total_cost(weights) - offline
                for result, offline in zip(results, offline_costs)
            ]
            regrets[label].append(float(np.mean(gaps)))
    return Fig10Result(horizons=tuple(horizons), regrets=regrets)


def format_result(result: Fig10Result) -> str:
    """Regret per horizon, plus the per-slot regret trend."""
    rows = []
    for label, values in sorted(result.regrets.items(), key=lambda kv: kv[1][-1]):
        trend = "sub-linear" if result.is_sublinear(label) else "linear+"
        rows.append([label] + list(values) + [trend])
    headers = ["algorithm"] + [f"T={t}" for t in result.horizons] + ["regret/T trend"]
    return format_table(headers, rows, title="Fig. 10 — regret for P0 vs horizon")


def main(fast: bool = True) -> Fig10Result:
    """Run and print the experiment."""
    result = run(fast=fast)
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
