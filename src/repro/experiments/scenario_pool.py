"""Cross-figure shared scenario pool for parallel sweeps.

Every figure experiment materializes a :class:`~repro.sim.scenario.Scenario`
(loss tables, price traces, energy model — megabytes of arrays) and the
sweep engine ships it to pool workers *per submitted cell*: the scenario is
pickled into every task's argument tuple, so a 30-cell sweep serializes the
same bytes 30 times, and a ``run_all`` invocation re-ships them again for
every figure that shares the scenario.

The pool breaks that multiplication with content addressing:

* :meth:`ScenarioPool.share` writes the scenario to the pool directory
  **once**, keyed by the SHA-256 of its canonical-JSON
  :func:`~repro.experiments.cache.scenario_fingerprint` — the same
  content address the result cache already uses, so two figures that
  build equal scenarios share one file automatically;
* workers receive a tiny :class:`ScenarioRef` (digest + path) instead of
  the scenario, and :func:`resolve` unpickles it **once per process**,
  memoized by digest — pool workers persist across cells and figures, so
  each worker pays the load cost once per distinct scenario per
  ``run_all`` invocation.

Determinism is untouched: the resolved scenario is byte-identical to the
one the parent shared (pickle round-trip), and cells still derive all
randomness from their own seeds.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.cache import scenario_fingerprint
from repro.sim.scenario import Scenario

__all__ = ["ScenarioPool", "ScenarioRef", "resolve", "scenario_digest"]


def scenario_digest(scenario: Scenario) -> str:
    """Content address of a scenario: SHA-256 of its canonical fingerprint."""
    canonical = json.dumps(
        scenario_fingerprint(scenario), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ScenarioRef:
    """A pickle-cheap handle to a pooled scenario (what crosses the fork)."""

    digest: str
    path: str


#: Per-process resolve memo: each worker unpickles a given scenario once.
_RESOLVE_MEMO: dict[str, Scenario] = {}


def resolve(ref: ScenarioRef) -> Scenario:
    """The scenario behind ``ref``, loaded at most once per process."""
    cached = _RESOLVE_MEMO.get(ref.digest)
    if cached is not None:
        return cached
    with open(ref.path, "rb") as handle:
        scenario = pickle.load(handle)
    _RESOLVE_MEMO[ref.digest] = scenario
    return scenario


class ScenarioPool:
    """A directory of content-addressed materialized scenarios."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def share(self, scenario: Scenario) -> ScenarioRef:
        """Persist ``scenario`` (idempotently) and return its ref.

        The write is atomic (temp file + rename) so concurrent sweeps
        sharing one pool directory never observe a torn scenario; a
        pre-existing file under the digest is trusted and left alone.
        The sharing process's memo is seeded with the live object, so
        in-process fallback cells resolve without touching disk.
        """
        digest = scenario_digest(scenario)
        path = self.directory / f"{digest}.pkl"
        if not path.exists():
            handle = tempfile.NamedTemporaryFile(
                dir=self.directory, suffix=".tmp", delete=False
            )
            try:
                with handle:
                    pickle.dump(scenario, handle, pickle.HIGHEST_PROTOCOL)
                os.replace(handle.name, path)
            except BaseException:
                os.unlink(handle.name)
                raise
        _RESOLVE_MEMO.setdefault(digest, scenario)
        return ScenarioRef(digest=digest, path=str(path))
