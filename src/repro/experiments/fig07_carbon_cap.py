"""Fig. 7 — total cost versus the initial carbon cap.

A larger pre-allocated cap means fewer allowances to purchase.  The paper
observes the cost of cap-aware methods (ours, Offline, UCB-LY) decreasing
with the cap, while UCB-Ran and UCB-TH stay flat because their trading
ignores the cap entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.engine import SweepEngine
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_many, run_offline_many
from repro.experiments.settings import default_config, default_seeds
from repro.metrics.summary import summarize_many
from repro.sim.scenario import build_scenario

__all__ = ["Fig07Result", "run", "format_result", "main"]

PAPER_CAPS = (0.0, 250.0, 500.0, 750.0, 1000.0)
FAST_CAPS = (0.0, 500.0, 1000.0)
SWEEP_COMBOS = (
    ("UCB", "Ran"),
    ("UCB", "TH"),
    ("UCB", "LY"),
)


@dataclass(frozen=True)
class Fig07Result:
    """Mean total cost per (algorithm, cap)."""

    caps: tuple[float, ...]
    costs: dict[str, list[float]]

    def slope(self, label: str) -> float:
        """Linear trend of cost against cap (negative = cap-aware)."""
        values = np.asarray(self.costs[label])
        caps = np.asarray(self.caps)
        return float(np.polyfit(caps, values, 1)[0])


def run(
    fast: bool = True,
    seeds: list[int] | None = None,
    caps: tuple[float, ...] | None = None,
    engine: SweepEngine | None = None,
) -> Fig07Result:
    """Execute the Fig. 7 sweep."""
    seeds = default_seeds(fast) if seeds is None else seeds
    caps = (FAST_CAPS if fast else PAPER_CAPS) if caps is None else caps

    labels = ["Ours"] + [f"{s}-{t}" for s, t in SWEEP_COMBOS] + ["Offline"]
    costs: dict[str, list[float]] = {label: [] for label in labels}
    for cap in caps:
        config = default_config(fast, carbon_cap_kg=cap)
        scenario = build_scenario(config)
        weights = config.weights
        results = run_many(scenario, "Ours", "Ours", seeds, label="Ours", engine=engine)
        costs["Ours"].append(summarize_many(results, weights).total_cost)
        for sel, trade in SWEEP_COMBOS:
            label = f"{sel}-{trade}"
            results = run_many(scenario, sel, trade, seeds, label=label, engine=engine)
            costs[label].append(summarize_many(results, weights).total_cost)
        offline = run_offline_many(scenario, seeds, engine=engine)
        costs["Offline"].append(summarize_many(offline, weights, label="Offline").total_cost)
    return Fig07Result(caps=tuple(caps), costs=costs)


def format_result(result: Fig07Result) -> str:
    """Total cost per cap, with the cost-vs-cap slope per algorithm."""
    rows = []
    for label, values in sorted(result.costs.items(), key=lambda kv: kv[1][-1]):
        rows.append([label] + list(values) + [result.slope(label)])
    headers = ["algorithm"] + [f"R={c:g}" for c in result.caps] + ["slope"]
    return format_table(headers, rows, title="Fig. 7 — total cost vs initial carbon cap")


def main(fast: bool = True) -> Fig07Result:
    """Run and print the experiment."""
    result = run(fast=fast)
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
