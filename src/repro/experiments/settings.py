"""Shared experiment settings (paper Section V-A)."""

from __future__ import annotations

from repro.sim.config import ScenarioConfig

__all__ = ["PAPER_COMBOS", "PLOT_COMBOS", "default_config", "default_seeds"]

#: Every baseline combination the paper evaluates (Section V-A).
PAPER_COMBOS: tuple[tuple[str, str], ...] = (
    ("Ran", "Ran"),
    ("Ran", "TH"),
    ("Ran", "LY"),
    ("Greedy", "Ran"),
    ("Greedy", "TH"),
    ("Greedy", "LY"),
    ("TINF", "Ran"),
    ("TINF", "TH"),
    ("TINF", "LY"),
    ("UCB", "Ran"),
    ("UCB", "TH"),
    ("UCB", "LY"),
)

#: The subset the paper keeps in most figures "for visualization clarity".
PLOT_COMBOS: tuple[tuple[str, str], ...] = (
    ("Ran", "Ran"),
    ("Ran", "LY"),
    ("Greedy", "Ran"),
    ("Greedy", "LY"),
    ("TINF", "Ran"),
    ("TINF", "LY"),
    ("UCB", "Ran"),
    ("UCB", "LY"),
)


def default_config(fast: bool = True, **overrides) -> ScenarioConfig:
    """The paper's default scenario; ``fast`` shrinks it for CI/benchmarks.

    Fast mode swaps the trained zoo for synthetic profiles (identical
    stochastic structure, no NN training) and keeps the full 160-slot
    two-day horizon with 10 edges.  Full mode defaults to the CIFAR-10-like
    zoo: its model-quality spread matches the regime where the paper's
    cost orderings are demonstrated (the MNIST-like zoo's cheapest model is
    already ~95% accurate, which flatters Greedy — see EXPERIMENTS.md).
    """
    base = dict(
        dataset="synthetic" if fast else "cifar10",
        num_edges=10,
        horizon=160,
        carbon_cap_kg=500.0,
        seed=0,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def default_seeds(fast: bool = True) -> list[int]:
    """Run seeds averaged per data point (paper: 10 runs)."""
    return list(range(3)) if fast else list(range(10))
