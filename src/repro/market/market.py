"""Carbon allowance market: executes buy/sell orders at trace prices."""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.events import TradeEvent
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.traces.carbon_prices import PriceSeries
from repro.utils.validation import check_nonnegative

__all__ = ["Trade", "CarbonMarket"]


@dataclass(frozen=True)
class Trade:
    """An executed allowance trade at one time slot.

    ``cost = bought * buy_price - sold * sell_price`` — the paper's
    ``z^t c^t - w^t r^t`` (negative cost means net revenue).
    """

    slot: int
    bought: float
    sold: float
    buy_price: float
    sell_price: float

    @property
    def cost(self) -> float:
        """Net expense of this trade."""
        return self.bought * self.buy_price - self.sold * self.sell_price

    @property
    def net_quantity(self) -> float:
        """Net allowances acquired (bought minus sold)."""
        return self.bought - self.sold


class CarbonMarket:
    """Wraps a :class:`PriceSeries` and records executed trades."""

    def __init__(self, prices: PriceSeries, *, tracer: Tracer | None = None) -> None:
        self._prices = prices
        self._trades: list[Trade] = []
        self._tracer = tracer if tracer is not None else NULL_TRACER

    def bind_tracer(self, tracer: Tracer) -> None:
        """Attach the event bus future executions should emit through."""
        self._tracer = tracer

    def __getstate__(self) -> dict[str, object]:
        """Pickle without the bound tracer (it may hold open file sinks)."""
        state = dict(self.__dict__)
        state["_tracer"] = NULL_TRACER
        return state

    @property
    def prices(self) -> PriceSeries:
        """The underlying price trace."""
        return self._prices

    @property
    def horizon(self) -> int:
        """Number of slots with known prices."""
        return self._prices.horizon

    @property
    def trades(self) -> list[Trade]:
        """All trades executed so far, in order."""
        return list(self._trades)

    def buy_price(self, t: int) -> float:
        """Allowance buying price ``c^t``."""
        self._check_slot(t)
        return float(self._prices.buy[t])

    def sell_price(self, t: int) -> float:
        """Allowance selling price ``r^t``."""
        self._check_slot(t)
        return float(self._prices.sell[t])

    def execute(self, t: int, bought: float, sold: float) -> Trade:
        """Execute a trade of ``bought`` / ``sold`` allowances at slot ``t``."""
        self._check_slot(t)
        check_nonnegative(bought, "bought")
        check_nonnegative(sold, "sold")
        trade = Trade(
            slot=t,
            bought=float(bought),
            sold=float(sold),
            buy_price=self.buy_price(t),
            sell_price=self.sell_price(t),
        )
        self._trades.append(trade)
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(
                TradeEvent(
                    t=t,
                    buy=trade.bought,
                    sell=trade.sold,
                    buy_price=trade.buy_price,
                    sell_price=trade.sell_price,
                    cost=trade.cost,
                )
            )
        return trade

    def total_cost(self) -> float:
        """Cumulative trading expense ``sum_t (z^t c^t - w^t r^t)``."""
        return sum(trade.cost for trade in self._trades)

    def _check_slot(self, t: int) -> None:
        if not 0 <= t < self.horizon:
            raise IndexError(f"slot {t} outside price horizon [0, {self.horizon})")
