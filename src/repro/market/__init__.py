"""Cap-and-trade substrate: allowance market and emission ledger."""

from repro.market.market import CarbonMarket, Trade
from repro.market.ledger import AllowanceLedger, LedgerSnapshot

__all__ = ["CarbonMarket", "Trade", "AllowanceLedger", "LedgerSnapshot"]
