"""Allowance ledger: tracks emissions versus allowance holdings over time.

The ledger is the accounting view of the paper's long-term constraint (1c):

    sum_t emissions_t  <=  R + sum_t bought_t - sum_t sold_t.

Its cumulative positive violation is exactly the "fit" of Theorem 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.events import EmissionEvent
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.utils.validation import check_nonnegative

__all__ = ["LedgerSnapshot", "AllowanceLedger"]


@dataclass(frozen=True)
class LedgerSnapshot:
    """Cumulative ledger state after some number of slots."""

    slots: int
    cumulative_emissions: float
    cumulative_bought: float
    cumulative_sold: float
    initial_cap: float

    @property
    def holdings(self) -> float:
        """Allowances currently held: ``R + sum z - sum w``."""
        return self.initial_cap + self.cumulative_bought - self.cumulative_sold

    @property
    def violation(self) -> float:
        """Positive part of (emissions - holdings); zero when neutral."""
        return max(self.cumulative_emissions - self.holdings, 0.0)

    @property
    def is_neutral(self) -> bool:
        """Whether cumulative emissions are fully covered."""
        return self.violation <= 1e-9


class AllowanceLedger:
    """Records per-slot emissions and trades; answers neutrality queries."""

    def __init__(self, initial_cap: float, *, tracer: Tracer | None = None) -> None:
        self._cap = check_nonnegative(initial_cap, "initial_cap")
        self._emissions: list[float] = []
        self._bought: list[float] = []
        self._sold: list[float] = []
        self._tracer = tracer if tracer is not None else NULL_TRACER
        # Running totals for event emission only; snapshot() keeps its
        # np.sum reductions so reported aggregates are unchanged.
        self._running_emissions = 0.0
        self._running_net_purchase = 0.0
        self._rejected_trades = 0
        self._deferred_buy_total = 0.0
        self._deferred_sell_total = 0.0

    def bind_tracer(self, tracer: Tracer) -> None:
        """Attach the event bus future records should emit through."""
        self._tracer = tracer

    def __getstate__(self) -> dict[str, object]:
        """Pickle without the bound tracer (it may hold open file sinks)."""
        state = dict(self.__dict__)
        state["_tracer"] = NULL_TRACER
        return state

    @property
    def initial_cap(self) -> float:
        """The pre-allocated allowance cap ``R``."""
        return self._cap

    @property
    def slots_recorded(self) -> int:
        """Number of slots recorded so far."""
        return len(self._emissions)

    def record(self, emissions: float, bought: float, sold: float) -> None:
        """Record one slot's emissions and trade quantities."""
        check_nonnegative(emissions, "emissions")
        check_nonnegative(bought, "bought")
        check_nonnegative(sold, "sold")
        self._emissions.append(float(emissions))
        self._bought.append(float(bought))
        self._sold.append(float(sold))
        self._running_emissions += float(emissions)
        self._running_net_purchase += float(bought) - float(sold)
        tracer = self._tracer
        if tracer.enabled:
            holdings = self._cap + self._running_net_purchase
            tracer.emit(
                EmissionEvent(
                    t=len(self._emissions) - 1,
                    emissions_kg=float(emissions),
                    cumulative_kg=self._running_emissions,
                    holdings_kg=holdings,
                    violation_kg=max(self._running_emissions - holdings, 0.0),
                )
            )

    def record_rejection(self, buy: float, sell: float) -> None:
        """Tally a slot whose intended trade did not execute.

        The slot itself is still recorded via :meth:`record` with zero
        volumes (the ledger reflects only realized state); this side tally
        tracks how much intent was deferred so reconciliation is auditable.
        """
        self._rejected_trades += 1
        self._deferred_buy_total += float(check_nonnegative(buy, "buy"))
        self._deferred_sell_total += float(check_nonnegative(sell, "sell"))

    @property
    def rejected_trades(self) -> int:
        """Number of slots whose trade was rejected or deferred."""
        return self._rejected_trades

    @property
    def deferred_volumes(self) -> tuple[float, float]:
        """Total (buy, sell) intent that failed to execute when decided."""
        return (self._deferred_buy_total, self._deferred_sell_total)

    def snapshot(self) -> LedgerSnapshot:
        """Current cumulative state."""
        return LedgerSnapshot(
            slots=self.slots_recorded,
            cumulative_emissions=float(np.sum(self._emissions)),
            cumulative_bought=float(np.sum(self._bought)),
            cumulative_sold=float(np.sum(self._sold)),
            initial_cap=self._cap,
        )

    def emissions_series(self) -> np.ndarray:
        """Per-slot emissions recorded so far."""
        return np.asarray(self._emissions)

    def net_purchase_series(self) -> np.ndarray:
        """Per-slot net allowance purchases (bought - sold)."""
        return np.asarray(self._bought) - np.asarray(self._sold)

    def violation_series(self) -> np.ndarray:
        """Running positive violation after each recorded slot.

        Entry ``t`` is ``[sum_{s<=t} e_s - (R + sum_{s<=t} z_s - w_s)]^+`` —
        the paper's fit measured at every prefix of the horizon.
        """
        emissions = np.cumsum(self._emissions)
        holdings = self._cap + np.cumsum(self._bought) - np.cumsum(self._sold)
        return np.maximum(emissions - holdings, 0.0)
