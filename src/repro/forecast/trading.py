"""Algorithm 2 with plugged-in price forecasts.

Two changes relative to :class:`repro.core.carbon_trading.OnlineCarbonTrading`:

1. The primal step uses the forecasters' one-step-ahead predictions of the
   *current* prices instead of the previous slot's realized prices (the
   vanilla algorithm is recovered exactly by a "last value" forecast).
2. Optionally, a trend tilt: if prices are predicted to rise over the next
   slot, buying now is effectively cheaper, so the price fed to the buy
   step is shifted down by ``trend_weight * (p_hat_{t+1} - p_hat_t)`` (and
   symmetrically up for the sell step), concentrating purchases before
   predicted increases.

The dual update is untouched, so Theorem 2's fit guarantee mechanics are
preserved.  Empirically (see ``repro.experiments.ext_forecast``), on
predictable (mean-reverting) markets the tilt mostly buys *earlier*: the
neutrality violation collapses to near zero at a percent-level increase in
the unit purchase price — price information converts into faster coverage.
"""

from __future__ import annotations

from repro.core.carbon_trading import OnlineCarbonTrading
from repro.forecast.price_models import AR1Forecaster, PriceForecaster
from repro.policies.trading import TradeDecision, TradingContext
from repro.utils.validation import check_nonnegative

__all__ = ["ForecastCarbonTrading"]


class ForecastCarbonTrading(OnlineCarbonTrading):
    """Algorithm 2 driven by online price forecasts."""

    name = "Ours+F"

    def __init__(
        self,
        gamma1: float = 0.2,
        gamma2: float = 4.0,
        buy_forecaster: PriceForecaster | None = None,
        sell_forecaster: PriceForecaster | None = None,
        trend_weight: float = 10.0,
    ) -> None:
        super().__init__(gamma1=gamma1, gamma2=gamma2, rectified=True)
        self.buy_forecaster = buy_forecaster if buy_forecaster is not None else AR1Forecaster()
        self.sell_forecaster = (
            sell_forecaster if sell_forecaster is not None else AR1Forecaster()
        )
        self.trend_weight = check_nonnegative(trend_weight, "trend_weight")

    def _effective_prices(self, context: TradingContext) -> tuple[float, float]:
        """Forecasted current prices, tilted by the predicted trend."""
        if self.buy_forecaster.observations == 0:
            return context.prev_buy_price, context.prev_sell_price
        buy_now = self.buy_forecaster.predict(1)
        sell_now = self.sell_forecaster.predict(1)
        if self.trend_weight > 0:
            buy_trend = self.buy_forecaster.predict(2) - buy_now
            sell_trend = self.sell_forecaster.predict(2) - sell_now
            # Rising buy prices make buying now cheaper in opportunity terms;
            # rising sell prices make selling now less attractive.
            buy_now = max(buy_now - self.trend_weight * buy_trend, 1e-9)
            sell_now = max(sell_now - self.trend_weight * sell_trend, 0.0)
        return buy_now, sell_now

    def decide(self, context: TradingContext) -> TradeDecision:
        """Primal step (4) with forecasted prices in place of ``c^{t-1}``."""
        if context.t == 0:
            return TradeDecision(buy=0.0, sell=0.0)
        bound = context.trade_bound
        buy_price, sell_price = self._effective_prices(context)
        buy = self._clip(
            self._prev_buy - self.gamma2 * (buy_price - self._lambda), bound
        )
        sell = self._clip(
            self._prev_sell - self.gamma2 * (self._lambda - sell_price), bound
        )
        return TradeDecision(buy=buy, sell=sell)

    def observe(
        self, context: TradingContext, decision: TradeDecision, emissions: float
    ) -> None:
        """Dual step plus forecaster updates with the realized prices."""
        super().observe(context, decision, emissions)
        self.buy_forecaster.update(context.buy_price)
        self.sell_forecaster.update(context.sell_price)
