"""Price-prediction extension (paper Section VII, future work #1).

The paper treats allowance prices as exogenous and its Algorithm 2 uses
only the previous slot's prices.  This package adds online price
forecasters (EWMA and recursive-least-squares AR(1)) and a trading policy
that plugs their one-step-ahead predictions into Algorithm 2's primal step,
optionally tilting purchases toward slots before predicted price rises.
"""

from repro.forecast.price_models import AR1Forecaster, EwmaForecaster, PriceForecaster
from repro.forecast.trading import ForecastCarbonTrading

__all__ = [
    "PriceForecaster",
    "EwmaForecaster",
    "AR1Forecaster",
    "ForecastCarbonTrading",
]
