"""Online one-step-ahead price forecasters.

Both models are fully online (O(1) state and update), matching the paper's
information structure: at slot ``t`` they have seen prices up to ``t-1``
only.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_in_range, check_positive

__all__ = ["PriceForecaster", "EwmaForecaster", "AR1Forecaster"]


class PriceForecaster:
    """Interface: observe realized prices, predict the next one."""

    def update(self, price: float) -> None:
        """Fold in the price realized at the current slot."""
        raise NotImplementedError

    def predict(self, steps: int = 1) -> float:
        """Forecast the price ``steps`` slots ahead of the last observation."""
        raise NotImplementedError

    @property
    def observations(self) -> int:
        """Number of prices observed so far."""
        raise NotImplementedError

    @staticmethod
    def _check_price(price: float) -> float:
        if not np.isfinite(price) or price <= 0:
            raise ValueError(f"price must be finite and positive, got {price!r}")
        return float(price)


class EwmaForecaster(PriceForecaster):
    """Exponentially weighted moving average: flat forecast at the EWMA."""

    def __init__(self, alpha: float = 0.3) -> None:
        check_in_range(alpha, "alpha", 0.0, 1.0, inclusive=False)
        self.alpha = alpha
        self._mean: float | None = None
        self._count = 0

    def update(self, price: float) -> None:
        price = self._check_price(price)
        if self._mean is None:
            self._mean = price
        else:
            self._mean = self.alpha * price + (1.0 - self.alpha) * self._mean
        self._count += 1

    def predict(self, steps: int = 1) -> float:
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        if self._mean is None:
            raise RuntimeError("cannot predict before any observation")
        return self._mean

    @property
    def observations(self) -> int:
        return self._count


class AR1Forecaster(PriceForecaster):
    """Recursive least squares for ``p_{t+1} = a * p_t + b + noise``.

    A forgetting factor keeps the fit adaptive to regime changes.  Before
    two observations exist, the forecast falls back to the last price
    (random-walk prior).
    """

    def __init__(self, forgetting: float = 0.98, regularization: float = 1e3) -> None:
        check_in_range(forgetting, "forgetting", 0.5, 1.0)
        check_positive(regularization, "regularization")
        self.forgetting = forgetting
        # RLS state over feature vector [p_t, 1].
        self._p_matrix = regularization * np.eye(2)
        self._theta = np.array([1.0, 0.0])  # start at a random walk
        self._last_price: float | None = None
        self._count = 0

    def update(self, price: float) -> None:
        price = self._check_price(price)
        if self._last_price is not None:
            x = np.array([self._last_price, 1.0])
            lam = self.forgetting
            px = self._p_matrix @ x
            gain = px / (lam + x @ px)
            error = price - self._theta @ x
            self._theta = self._theta + gain * error
            self._p_matrix = (self._p_matrix - np.outer(gain, px)) / lam
        self._last_price = price
        self._count += 1

    def predict(self, steps: int = 1) -> float:
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        if self._last_price is None:
            raise RuntimeError("cannot predict before any observation")
        price = self._last_price
        for _ in range(steps):
            price = float(self._theta[0] * price + self._theta[1])
        # Prices are positive; keep the forecast physically sensible.
        return max(price, 1e-9)

    @property
    def coefficients(self) -> tuple[float, float]:
        """Current ``(a, b)`` estimates."""
        return float(self._theta[0]), float(self._theta[1])

    @property
    def observations(self) -> int:
        return self._count
