"""The paper's built-in policy families, registered by name.

These builders are the experiment roster of Section V: the paper's
Algorithms 1/2 ("Ours") plus every baseline the figures compare against.
They were moved here from ``repro.experiments.runner`` so that the
registry — not an if/elif chain — is the single source of policy names.

RNG stream names (``selection-{i}``, ``trading``) are part of the
reproducibility contract: they must not change, or seeded runs would
diverge from previously recorded results.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.bandits import (
    EpsilonGreedySelection,
    Exp3Selection,
    GreedySelection,
    RandomSelection,
    TsallisInfSelection,
    UCB1Selection,
    UCB2Selection,
)
from repro.core import OnlineCarbonTrading, OnlineModelSelection
from repro.offline import NullTrading
from repro.policies.registry import register_selection, register_trading
from repro.trading import LyapunovTrading, RandomTrading, ThresholdTrading
from repro.traces.carbon_prices import CarbonPriceModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.policies.selection import SelectionPolicy
    from repro.policies.trading import TradingPolicy
    from repro.sim.scenario import Scenario
    from repro.utils.rng import RngFactory

__all__: list[str] = []


def _edge_rngs(scenario: "Scenario", rng_factory: "RngFactory"):
    """The per-edge RNG streams every selection builder draws from."""
    return [
        rng_factory.get(f"selection-{i}") for i in range(scenario.num_edges)
    ]


@register_selection("Ours")
def _build_ours_selection(
    scenario: "Scenario", rng_factory: "RngFactory"
) -> "list[SelectionPolicy]":
    switch_costs = scenario.effective_switch_costs()
    return [
        OnlineModelSelection(
            scenario.num_models,
            scenario.horizon,
            float(switch_costs[i]),
            rng,
        )
        for i, rng in enumerate(_edge_rngs(scenario, rng_factory))
    ]


@register_selection("Ran")
def _build_random_selection(
    scenario: "Scenario", rng_factory: "RngFactory"
) -> "list[SelectionPolicy]":
    return [
        RandomSelection(scenario.num_models, rng)
        for rng in _edge_rngs(scenario, rng_factory)
    ]


@register_selection("Greedy")
def _build_greedy_selection(
    scenario: "Scenario", rng_factory: "RngFactory"
) -> "list[SelectionPolicy]":
    return [
        GreedySelection(scenario.num_models, scenario.energy.phi_kwh)
        for _ in range(scenario.num_edges)
    ]


@register_selection("TINF")
def _build_tsallis_selection(
    scenario: "Scenario", rng_factory: "RngFactory"
) -> "list[SelectionPolicy]":
    return [
        TsallisInfSelection(scenario.num_models, scenario.horizon, rng)
        for rng in _edge_rngs(scenario, rng_factory)
    ]


@register_selection("UCB")
def _build_ucb2_selection(
    scenario: "Scenario", rng_factory: "RngFactory"
) -> "list[SelectionPolicy]":
    return [UCB2Selection(scenario.num_models) for _ in range(scenario.num_edges)]


@register_selection("UCB1")
def _build_ucb1_selection(
    scenario: "Scenario", rng_factory: "RngFactory"
) -> "list[SelectionPolicy]":
    return [UCB1Selection(scenario.num_models) for _ in range(scenario.num_edges)]


@register_selection("EG")
def _build_epsilon_greedy_selection(
    scenario: "Scenario", rng_factory: "RngFactory"
) -> "list[SelectionPolicy]":
    return [
        EpsilonGreedySelection(scenario.num_models, rng)
        for rng in _edge_rngs(scenario, rng_factory)
    ]


@register_selection("EXP3")
def _build_exp3_selection(
    scenario: "Scenario", rng_factory: "RngFactory"
) -> "list[SelectionPolicy]":
    return [
        Exp3Selection(scenario.num_models, rng)
        for rng in _edge_rngs(scenario, rng_factory)
    ]


@register_trading("Ours")
def _build_ours_trading(
    scenario: "Scenario", rng_factory: "RngFactory"
) -> "TradingPolicy":
    gamma1, gamma2 = OnlineCarbonTrading.step_sizes_for_horizon(scenario.horizon)
    return OnlineCarbonTrading(gamma1=gamma1, gamma2=gamma2)


@register_trading("Forecast")
def _build_forecast_trading(
    scenario: "Scenario", rng_factory: "RngFactory"
) -> "TradingPolicy":
    # Imported lazily: the forecast extension is optional on the hot path.
    from repro.forecast.trading import ForecastCarbonTrading

    gamma1, gamma2 = OnlineCarbonTrading.step_sizes_for_horizon(scenario.horizon)
    return ForecastCarbonTrading(gamma1=gamma1, gamma2=gamma2)


@register_trading("Ran")
def _build_random_trading(
    scenario: "Scenario", rng_factory: "RngFactory"
) -> "TradingPolicy":
    return RandomTrading(rng_factory.get("trading"))


@register_trading("TH")
def _build_threshold_trading(
    scenario: "Scenario", rng_factory: "RngFactory"
) -> "TradingPolicy":
    model = CarbonPriceModel()
    return ThresholdTrading(
        buy_threshold=model.mean_price,
        sell_threshold=model.sell_ratio * model.mean_price,
    )


@register_trading("LY")
def _build_lyapunov_trading(
    scenario: "Scenario", rng_factory: "RngFactory"
) -> "TradingPolicy":
    return LyapunovTrading(v=20.0)


@register_trading("Null")
def _build_null_trading(
    scenario: "Scenario", rng_factory: "RngFactory"
) -> "TradingPolicy":
    return NullTrading()
