"""Interface for carbon allowance trading policies (problem P2).

At each slot the simulator builds a :class:`TradingContext` with everything
observable *before* the trade executes, asks the policy for a
:class:`TradeDecision`, executes it, and then reveals the slot's realized
emissions through :meth:`TradingPolicy.observe` so the policy can update its
internal state (dual variable, virtual queue, running averages, ...).

Note the information structure: the paper's Algorithm 2 only uses inputs up
to and *excluding* the current slot (prices ``c^{t-1}, r^{t-1}`` and the
previous constraint function), while simpler baselines may look at the
currently posted prices — both are available in the context.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["TradeDecision", "TradingContext", "TradingPolicy"]


@dataclass(frozen=True)
class TradeDecision:
    """Quantities of allowances to buy (``z^t``) and sell (``w^t``)."""

    buy: float
    sell: float

    def __post_init__(self) -> None:
        if self.buy < 0 or self.sell < 0:
            raise ValueError(f"trade quantities must be non-negative: {self}")


@dataclass(frozen=True)
class TradingContext:
    """Everything a trading policy may observe before deciding at slot ``t``."""

    t: int
    horizon: int
    cap: float
    buy_price: float
    sell_price: float
    prev_buy_price: float
    prev_sell_price: float
    prev_emissions: float
    cumulative_emissions: float
    holdings: float
    mean_slot_emissions: float
    trade_bound: float

    def __post_init__(self) -> None:
        if not 0 <= self.t < self.horizon:
            raise ValueError(f"slot {self.t} outside horizon [0, {self.horizon})")
        if self.trade_bound <= 0:
            raise ValueError(f"trade_bound must be positive, got {self.trade_bound}")

    @property
    def cap_per_slot(self) -> float:
        """``R / T`` — the per-slot allowance budget in ``g^t``."""
        return self.cap / self.horizon

    @property
    def deficit(self) -> float:
        """Current uncovered emissions ``[cumulative_emissions - holdings]^+``."""
        return max(self.cumulative_emissions - self.holdings, 0.0)


class TradingPolicy:
    """Base class for carbon allowance trading policies."""

    #: short identifier used in experiment tables (e.g. "TH", "LY").
    name: str = "base"

    #: event bus receiving this policy's structured events (no-op default).
    tracer: Tracer = NULL_TRACER

    def bind_tracer(self, tracer: Tracer) -> None:
        """Attach the event bus this policy should emit through."""
        self.tracer = tracer

    def __getstate__(self) -> dict[str, object]:
        """Pickle without the bound tracer (it may hold open file sinks).

        An unpickled policy falls back to the class-level ``NULL_TRACER``;
        the restoring runtime rebinds its own tracer via ``bind_tracer``.
        """
        state = dict(self.__dict__)
        state.pop("tracer", None)
        return state

    def decide(self, context: TradingContext) -> TradeDecision:
        """Choose the quantities to buy and sell at slot ``context.t``."""
        raise NotImplementedError

    def observe(
        self, context: TradingContext, decision: TradeDecision, emissions: float
    ) -> None:
        """Reveal the slot's realized emissions after the trade executed.

        Default: no state to update.
        """

    def rescale_fleet(self, factor: float) -> None:
        """A live reconfiguration changed the active fleet by ``factor``.

        Called by :class:`~repro.sim.kernel.TradingSlotKernel` at a
        reconfiguration barrier so policies holding volume-denominated
        state (dual variables, trade anchors) can rescale it
        deterministically.  Default: no state to rescale.
        """

    @staticmethod
    def _clip(value: float, bound: float) -> float:
        """Clamp a trade quantity into the feasible interval [0, bound]."""
        return min(max(value, 0.0), bound)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
