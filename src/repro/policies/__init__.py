"""Abstract policy interfaces shared by the paper's algorithms and baselines."""

from repro.policies.selection import SelectionPolicy
from repro.policies.trading import TradeDecision, TradingContext, TradingPolicy

__all__ = ["SelectionPolicy", "TradingPolicy", "TradingContext", "TradeDecision"]
