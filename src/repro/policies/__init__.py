"""Policy interfaces and the registry-based construction API.

The abstract interfaces (:class:`SelectionPolicy`, :class:`TradingPolicy`)
are shared by the paper's algorithms and every baseline.  Construction goes
through the name registry: ``make_selection_policies("Ours", ...)`` /
``make_trading_policy("LY", ...)`` build calibrated instances, and new
families plug in with ``@register_selection`` / ``@register_trading`` (see
``examples/custom_policy.py``).
"""

from repro.policies.registry import (
    SELECTION_NAMES,
    TRADING_NAMES,
    make_selection_policies,
    make_trading_policy,
    register_selection,
    register_trading,
    selection_names,
    trading_names,
)
from repro.policies.selection import SelectionPolicy
from repro.policies.trading import TradeDecision, TradingContext, TradingPolicy

__all__ = [
    "SELECTION_NAMES",
    "SelectionPolicy",
    "TRADING_NAMES",
    "TradeDecision",
    "TradingContext",
    "TradingPolicy",
    "make_selection_policies",
    "make_trading_policy",
    "register_selection",
    "register_trading",
    "selection_names",
    "trading_names",
]
