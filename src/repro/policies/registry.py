"""Decorator-based registries: names -> policy builders.

This is the construction API behind ``Simulator.from_names``, ``repro.run``,
the experiment runner, and the CLI's ``--selection`` / ``--trading``
choices.  A *builder* is a plain function calibrating a policy family to a
scenario:

* selection builders have signature ``(scenario, rng_factory) ->
  list[SelectionPolicy]`` (one policy per edge);
* trading builders have signature ``(scenario, rng_factory) ->
  TradingPolicy``.

Register new families with the decorators::

    @register_selection("ETC")
    def build_etc(scenario, rng_factory):
        return [ExploreThenCommit(scenario.num_models)
                for _ in range(scenario.num_edges)]

The paper's families live in :mod:`repro.policies.builtin` and are loaded
lazily on first registry access, so importing :mod:`repro.policies` stays
cheap and cycle-free.  ``SELECTION_NAMES`` / ``TRADING_NAMES`` are live,
tuple-like views over the registries (registration order), kept for
backward compatibility with the original module-level tuples.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.policies.selection import SelectionPolicy
    from repro.policies.trading import TradingPolicy
    from repro.sim.scenario import Scenario
    from repro.utils.rng import RngFactory

__all__ = [
    "SELECTION_NAMES",
    "TRADING_NAMES",
    "make_selection_policies",
    "make_trading_policy",
    "register_selection",
    "register_trading",
    "selection_names",
    "trading_names",
]

SelectionBuilder = Callable[
    ["Scenario", "RngFactory"], "list[SelectionPolicy]"
]
TradingBuilder = Callable[["Scenario", "RngFactory"], "TradingPolicy"]

_SELECTION: dict[str, SelectionBuilder] = {}
_TRADING: dict[str, TradingBuilder] = {}
_builtin_loaded = False


def _ensure_builtin() -> None:
    """Load the paper's built-in families exactly once (import side effect).

    The flag is set *before* the import: the builtin module calls the
    decorators below at import time, and those re-enter this function.
    """
    global _builtin_loaded
    if _builtin_loaded:
        return
    _builtin_loaded = True
    try:
        import repro.policies.builtin  # noqa: F401 - registers via decorators
    except BaseException:
        _builtin_loaded = False
        raise


def _register(
    registry: dict, name: str, kind: str, replace: bool
) -> Callable[[Callable], Callable]:
    def decorator(builder: Callable) -> Callable:
        if not replace and name in registry:
            raise ValueError(
                f"{kind} policy {name!r} is already registered; pass "
                "replace=True to override it"
            )
        registry[name] = builder
        return builder

    return decorator


def register_selection(
    name: str, *, replace: bool = False
) -> Callable[[SelectionBuilder], SelectionBuilder]:
    """Decorator registering a selection-policy builder under ``name``.

    The builder receives ``(scenario, rng_factory)`` and must return one
    :class:`~repro.policies.selection.SelectionPolicy` per edge.  Duplicate
    names raise unless ``replace=True``.
    """
    _ensure_builtin()
    return _register(_SELECTION, name, "selection", replace)


def register_trading(
    name: str, *, replace: bool = False
) -> Callable[[TradingBuilder], TradingBuilder]:
    """Decorator registering a trading-policy builder under ``name``.

    The builder receives ``(scenario, rng_factory)`` and must return one
    :class:`~repro.policies.trading.TradingPolicy`.  Duplicate names raise
    unless ``replace=True``.
    """
    _ensure_builtin()
    return _register(_TRADING, name, "trading", replace)


def selection_names() -> tuple[str, ...]:
    """Registered selection-policy names, in registration order."""
    _ensure_builtin()
    return tuple(_SELECTION)


def trading_names() -> tuple[str, ...]:
    """Registered trading-policy names, in registration order."""
    _ensure_builtin()
    return tuple(_TRADING)


def make_selection_policies(
    name: str, scenario: "Scenario", rng_factory: "RngFactory"
) -> "list[SelectionPolicy]":
    """One per-edge selection policy of the registered family ``name``."""
    _ensure_builtin()
    builder = _SELECTION.get(name)
    if builder is None:
        raise ValueError(
            f"unknown selection policy {name!r}; expected one of "
            f"{selection_names()}"
        )
    return list(builder(scenario, rng_factory))


def make_trading_policy(
    name: str, scenario: "Scenario", rng_factory: "RngFactory"
) -> "TradingPolicy":
    """The registered trading policy ``name``, calibrated to the scenario."""
    _ensure_builtin()
    builder = _TRADING.get(name)
    if builder is None:
        raise ValueError(
            f"unknown trading policy {name!r}; expected one of {trading_names()}"
        )
    return builder(scenario, rng_factory)


class _NamesView:
    """Lazy, tuple-like, read-only view over a registry's names."""

    def __init__(self, names: Callable[[], tuple[str, ...]]) -> None:
        self._names = names

    def __iter__(self) -> Iterator[str]:
        return iter(self._names())

    def __len__(self) -> int:
        return len(self._names())

    def __getitem__(self, index):
        return self._names()[index]

    def __contains__(self, name: object) -> bool:
        return name in self._names()

    def __add__(self, other) -> tuple[str, ...]:
        return self._names() + tuple(other)

    def __radd__(self, other) -> tuple[str, ...]:
        return tuple(other) + self._names()

    def __eq__(self, other: object) -> bool:
        try:
            return self._names() == tuple(other)  # type: ignore[arg-type]
        except TypeError:
            return NotImplemented

    def __hash__(self) -> int:
        return hash(self._names())

    def __repr__(self) -> str:
        return repr(self._names())


#: Live views mirroring the historical module-level name tuples.
SELECTION_NAMES = _NamesView(selection_names)
TRADING_NAMES = _NamesView(trading_names)
