"""Interface for per-edge model-selection policies (problem P1).

One policy instance controls one edge.  At each slot the simulator calls
:meth:`SelectionPolicy.select` to obtain the model to host, runs inference,
and feeds back the realized slot loss ``L_{i,n}^t + v_{i,n}`` through
:meth:`SelectionPolicy.observe` — bandit feedback: only the chosen model's
loss is revealed.
"""

from __future__ import annotations

from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["SelectionPolicy"]


class SelectionPolicy:
    """Base class for model-selection policies on a single edge."""

    #: short identifier used in experiment tables (e.g. "Ran", "UCB").
    name: str = "base"

    #: event bus receiving this policy's structured events (no-op default).
    tracer: Tracer = NULL_TRACER

    #: edge index stamped into emitted events (set by ``bind_tracer``).
    trace_edge: int = 0

    def __init__(self, num_models: int) -> None:
        if num_models <= 0:
            raise ValueError(f"num_models must be positive, got {num_models}")
        self.num_models = num_models
        self.feedback_losses = 0

    def bind_tracer(self, tracer: Tracer, edge: int = 0) -> None:
        """Attach the event bus (and this policy's edge index for events)."""
        self.tracer = tracer
        self.trace_edge = edge

    def __getstate__(self) -> dict[str, object]:
        """Pickle without the bound tracer (it may hold open file sinks).

        An unpickled policy falls back to the class-level ``NULL_TRACER``;
        the restoring runtime rebinds its own tracer via ``bind_tracer``.
        """
        state = dict(self.__dict__)
        state.pop("tracer", None)
        return state

    def select(self, t: int) -> int:
        """Return the model index to host at slot ``t``."""
        raise NotImplementedError

    def observe(self, t: int, model: int, loss: float) -> None:
        """Feed back the realized slot loss of the *chosen* model.

        ``loss`` is the paper's ``L_{i,n}^t + v_{i,n}`` — average inference
        loss over the slot's arrivals plus the model's computation cost.
        """
        raise NotImplementedError

    def observe_lost(self, t: int, model: int) -> None:
        """Note that slot ``t``'s feedback never arrived (fault injection).

        The default keeps estimators untouched — skipping the update leaves
        importance-weighted estimates unbiased over the observed slots —
        and only tallies the loss.  Policies with per-slot bookkeeping
        (e.g. block-based selection) override this to keep their internal
        schedules consistent.
        """
        self._check_model(model)
        self.feedback_losses += 1

    def _check_model(self, model: int) -> None:
        if not 0 <= model < self.num_models:
            raise ValueError(f"model index {model} outside [0, {self.num_models})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(num_models={self.num_models})"
