"""Deterministic realization of a :class:`~repro.faults.plan.FaultPlan`.

The injector materializes every probabilistic fault spec into boolean
realization arrays at construction time, drawing each spec from its own
named RNG stream (``"<kind>-<spec index>"`` under the factory it is given).
Because each stream is consumed in exactly one vectorized draw, realization
is independent of query order, and adding or removing one spec never
perturbs the realization of another.  Queries afterwards are plain array
lookups — nothing on the simulator's hot path consumes randomness.
"""

from __future__ import annotations

import numpy as np

from repro.faults.plan import (
    DownloadFailure,
    EdgeOutage,
    FaultPlan,
    FeedbackLoss,
    GilbertElliottLoss,
    MarketOutage,
    TradeRejection,
)
from repro.utils.rng import RngFactory

__all__ = ["FaultInjector"]

#: Backoff cap used when a download fails at a cell no spec covers (cannot
#: happen by construction, but keeps ``backoff_cap`` total).
_DEFAULT_BACKOFF_CAP = 8


class FaultInjector:
    """Realizes a fault plan over a ``(horizon, num_edges)`` grid.

    Parameters
    ----------
    plan:
        The declared faults.  Spec order indexes the RNG stream names.
    horizon, num_edges:
        Dimensions of the run the plan applies to.
    rng:
        Factory whose named streams realize the probabilistic specs.  The
        simulator passes a dedicated child so fault streams never collide
        with workload or policy streams.
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        horizon: int,
        num_edges: int,
        rng: RngFactory,
    ) -> None:
        if horizon <= 0 or num_edges <= 0:
            raise ValueError(
                f"horizon and num_edges must be positive, got "
                f"({horizon}, {num_edges})"
            )
        self.plan = plan
        self.horizon = horizon
        self.num_edges = num_edges

        offline = np.zeros((horizon, num_edges), dtype=bool)
        feedback = np.zeros((horizon, num_edges), dtype=bool)
        download = np.zeros((horizon, num_edges), dtype=bool)
        backoff = np.full((horizon, num_edges), _DEFAULT_BACKOFF_CAP, dtype=int)
        blocked = np.zeros(horizon, dtype=bool)

        for index, spec in enumerate(plan.specs):
            if isinstance(spec, EdgeOutage):
                self._check_edge(spec.edge)
                offline[spec.start : spec.end, spec.edge] = True
            elif isinstance(spec, FeedbackLoss):
                feedback |= self._edge_mask(spec, index, rng)
            elif isinstance(spec, GilbertElliottLoss):
                feedback |= self._gilbert_elliott_mask(spec, index, rng)
            elif isinstance(spec, DownloadFailure):
                mask = self._edge_mask(spec, index, rng)
                download |= mask
                window = self._window_mask(spec.start, spec.end, spec.edge)
                backoff[window] = np.maximum(backoff[window], spec.max_backoff)
            elif isinstance(spec, MarketOutage):
                blocked[spec.start : spec.end] = True
            elif isinstance(spec, TradeRejection):
                end = horizon if spec.end is None else min(spec.end, horizon)
                draws = rng.get(f"{spec.kind}-{index}").random(horizon)
                hits = draws < spec.probability
                hits[: spec.start] = False
                hits[end:] = False
                blocked |= hits
            else:  # future spec kinds must be wired here explicitly
                raise TypeError(f"injector cannot realize {type(spec).__name__}")

        self._offline = offline
        self._feedback_lost = feedback
        self._download_failed = download
        self._backoff_cap = backoff
        self._trade_blocked = blocked
        #: Whether any per-edge fault can fire (fast-path guard for callers).
        self.has_edge_faults = bool(
            offline.any() or feedback.any() or download.any()
        )
        #: Whether any trading-side fault can fire.
        self.has_trading_faults = bool(blocked.any())

    def _check_edge(self, edge: int) -> None:
        if edge >= self.num_edges:
            raise ValueError(
                f"fault targets edge {edge}, scenario has {self.num_edges} edges"
            )

    def _window_mask(
        self, start: int, end: int | None, edge: int | None
    ) -> np.ndarray:
        mask = np.zeros((self.horizon, self.num_edges), dtype=bool)
        stop = self.horizon if end is None else min(end, self.horizon)
        if edge is None:
            mask[start:stop, :] = True
        else:
            self._check_edge(edge)
            mask[start:stop, edge] = True
        return mask

    def _edge_mask(self, spec, index: int, rng: RngFactory) -> np.ndarray:
        """Bernoulli realization of a per-edge probabilistic spec."""
        draws = rng.get(f"{spec.kind}-{index}").random(
            (self.horizon, self.num_edges)
        )
        return (draws < spec.probability) & self._window_mask(
            spec.start, spec.end, spec.edge
        )

    def _gilbert_elliott_mask(
        self, spec: GilbertElliottLoss, index: int, rng: RngFactory
    ) -> np.ndarray:
        """Realize a bursty two-state loss channel per edge.

        One vectorized draw from the spec's stream supplies both the state
        transitions (``u[0]``) and the per-slot loss draws (``u[1]``), so
        realization stays a single consumption of the named stream.  Chains
        start good and evolve slot by slot; the loss probability applied at
        each slot is the state's (``loss_good`` / ``loss_bad``).
        """
        u = rng.get(f"{spec.kind}-{index}").random(
            (2, self.horizon, self.num_edges)
        )
        bad = np.zeros(self.num_edges, dtype=bool)
        loss_p = np.empty((self.horizon, self.num_edges))
        for t in range(self.horizon):
            flip = np.where(bad, u[0, t] < spec.p_good, u[0, t] < spec.p_bad)
            bad = bad ^ flip
            loss_p[t] = np.where(bad, spec.loss_bad, spec.loss_good)
        return (u[1] < loss_p) & self._window_mask(
            spec.start, spec.end, spec.edge
        )

    def edge_offline(self, t: int, edge: int) -> bool:
        """Whether ``edge`` is down (serving nothing) at slot ``t``."""
        return bool(self._offline[t, edge])

    def feedback_lost(self, t: int, edge: int) -> bool:
        """Whether the slot-loss observation at ``(t, edge)`` is dropped."""
        return bool(self._feedback_lost[t, edge])

    def download_failed(self, t: int, edge: int) -> bool:
        """Whether a model download attempted at ``(t, edge)`` fails."""
        return bool(self._download_failed[t, edge])

    def backoff_cap(self, t: int, edge: int) -> int:
        """Retry-backoff cap (in slots) governing a failure at ``(t, edge)``."""
        return int(self._backoff_cap[t, edge])

    def trade_blocked(self, t: int) -> bool:
        """Whether the slot-``t`` trade cannot execute (outage or rejection)."""
        return bool(self._trade_blocked[t])

    def summary(self) -> dict[str, int]:
        """Realized fault counts by category (for CLI / trace summaries)."""
        return {
            "edge_offline_slots": int(self._offline.sum()),
            "feedback_lost_slots": int(self._feedback_lost.sum()),
            "download_failure_slots": int(self._download_failed.sum()),
            "trade_blocked_slots": int(self._trade_blocked.sum()),
        }
