"""Typed fault specifications and the :class:`FaultPlan` container.

A *fault plan* declares, ahead of a run, which infrastructure failures the
simulated system must operate through.  Each spec is a frozen dataclass with
a stable ``kind`` tag, so plans round-trip losslessly through JSON
(:meth:`FaultPlan.to_dict` / :meth:`FaultPlan.from_dict`) and can be passed
on the command line (``repro experiment --faults PLAN.json``).

The taxonomy mirrors the failure modes of a carbon-aware edge deployment:

* :class:`EdgeOutage` — an edge is offline for a slot window: arriving
  samples are dropped unserved, no inference loss is observed, and no model
  download can complete.
* :class:`FeedbackLoss` — the slot-loss observation is lost in transit with
  probability ``p`` (the inference itself ran and its costs accrue).
* :class:`DownloadFailure` — a model switch fails with probability ``p``;
  the edge keeps the old model and retries under capped exponential backoff
  measured in slots.
* :class:`MarketOutage` — the carbon market is unreachable for a slot
  window: no trade executes, intent carries over.
* :class:`TradeRejection` — an individual trade is rejected with
  probability ``p`` (market reachable, order bounced).

Probabilities are realized by :class:`~repro.faults.injector.FaultInjector`
from dedicated named RNG streams, so a faulted run is bit-reproducible and
an empty plan leaves every existing stream untouched.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar, Union

__all__ = [
    "DownloadFailure",
    "EdgeOutage",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FeedbackLoss",
    "GilbertElliottLoss",
    "MarketOutage",
    "TradeRejection",
    "load_plan",
    "register_fault",
]

#: Registry of fault kind tag -> spec class, populated by ``register_fault``.
FAULT_KINDS: dict[str, type["FaultSpec"]] = {}


def register_fault(cls: type["FaultSpec"]) -> type["FaultSpec"]:
    """Class decorator adding a fault spec to :data:`FAULT_KINDS` (tag-unique)."""
    if cls.kind in FAULT_KINDS:
        raise ValueError(f"duplicate fault kind tag {cls.kind!r}")
    FAULT_KINDS[cls.kind] = cls
    return cls


def _check_window(start: int, end: int | None) -> None:
    if start < 0:
        raise ValueError(f"start must be non-negative, got {start}")
    if end is not None and end <= start:
        raise ValueError(f"window [{start}, {end}) is empty or inverted")


def _check_probability(probability: float) -> None:
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must lie in [0, 1], got {probability}")


@dataclass(frozen=True)
class FaultSpec:
    """Base fault spec: one declared failure mode of the simulated system."""

    #: Stable wire tag written to the ``"kind"`` key of the JSON form.
    kind: ClassVar[str] = "fault"

    def as_dict(self) -> dict[str, object]:
        """JSON-ready mapping: the fields plus the ``"kind"`` tag."""
        return {"kind": self.kind, **dataclasses.asdict(self)}


@register_fault
@dataclass(frozen=True)
class EdgeOutage(FaultSpec):
    """Edge ``edge`` is offline for slots ``[start, end)``.

    While offline the edge serves no samples (arrivals are dropped), emits
    nothing, observes no feedback, and cannot download models; it keeps
    whatever model it already hosts and re-synchronizes with its selection
    policy once back online.
    """

    edge: int
    start: int
    end: int

    kind: ClassVar[str] = "edge_outage"

    def __post_init__(self) -> None:
        if self.edge < 0:
            raise ValueError(f"edge must be non-negative, got {self.edge}")
        _check_window(self.start, self.end)


@register_fault
@dataclass(frozen=True)
class FeedbackLoss(FaultSpec):
    """Slot-loss observations are dropped with probability ``probability``.

    Applies to slots in ``[start, end)`` (``end=None`` means the horizon)
    on ``edge`` (``None`` means every edge).  The inference itself still
    runs — only the bandit feedback is lost, and the affected policy skips
    its estimator update for that slot.
    """

    probability: float
    edge: int | None = None
    start: int = 0
    end: int | None = None

    kind: ClassVar[str] = "feedback_loss"

    def __post_init__(self) -> None:
        _check_probability(self.probability)
        if self.edge is not None and self.edge < 0:
            raise ValueError(f"edge must be non-negative, got {self.edge}")
        _check_window(self.start, self.end)


@register_fault
@dataclass(frozen=True)
class DownloadFailure(FaultSpec):
    """Model downloads fail with probability ``probability``.

    On failure the edge keeps its old model and retries under exponential
    backoff measured in slots (1, 2, 4, ... capped at ``max_backoff``).
    The initial model provisioning (nothing hosted yet) never fails —
    only mid-run switches do.
    """

    probability: float
    edge: int | None = None
    start: int = 0
    end: int | None = None
    max_backoff: int = 8

    kind: ClassVar[str] = "download_failure"

    def __post_init__(self) -> None:
        _check_probability(self.probability)
        if self.edge is not None and self.edge < 0:
            raise ValueError(f"edge must be non-negative, got {self.edge}")
        if self.max_backoff < 1:
            raise ValueError(f"max_backoff must be >= 1, got {self.max_backoff}")
        _check_window(self.start, self.end)


@register_fault
@dataclass(frozen=True)
class MarketOutage(FaultSpec):
    """The carbon market is unreachable for slots ``[start, end)``.

    Trading decisions made during the outage are not executed; their intent
    carries over and reconciles once the market is reachable again, and the
    trading policy's dual update sees only the realized (zero) trade.
    """

    start: int
    end: int

    kind: ClassVar[str] = "market_outage"

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)


@register_fault
@dataclass(frozen=True)
class TradeRejection(FaultSpec):
    """Individual trades are rejected with probability ``probability``.

    Same degradation path as :class:`MarketOutage`, but stochastic per slot
    within ``[start, end)`` (``end=None`` means the horizon).
    """

    probability: float
    start: int = 0
    end: int | None = None

    kind: ClassVar[str] = "trade_rejection"

    def __post_init__(self) -> None:
        _check_probability(self.probability)
        _check_window(self.start, self.end)


@register_fault
@dataclass(frozen=True)
class GilbertElliottLoss(FaultSpec):
    """Bursty feedback loss driven by a two-state Gilbert-Elliott channel.

    Each edge's feedback link evolves as a Markov chain over {good, bad}:
    from good it enters bad with probability ``p_bad`` per slot, from bad it
    recovers with probability ``p_good``.  A slot's observation is dropped
    with probability ``loss_good`` while the link is good and ``loss_bad``
    while it is bad — the classic correlated/bursty loss model, in contrast
    to :class:`FeedbackLoss`'s IID drops.  Applies to slots ``[start, end)``
    (``end=None`` means the horizon) on ``edge`` (``None`` means every edge,
    each with an independent chain).  Chains start in the good state.
    """

    p_bad: float
    p_good: float
    loss_good: float = 0.0
    loss_bad: float = 1.0
    edge: int | None = None
    start: int = 0
    end: int | None = None

    kind: ClassVar[str] = "gilbert_elliott_loss"

    def __post_init__(self) -> None:
        _check_probability(self.p_bad)
        _check_probability(self.p_good)
        _check_probability(self.loss_good)
        _check_probability(self.loss_bad)
        if self.edge is not None and self.edge < 0:
            raise ValueError(f"edge must be non-negative, got {self.edge}")
        _check_window(self.start, self.end)


AnyFault = Union[
    EdgeOutage,
    FeedbackLoss,
    GilbertElliottLoss,
    DownloadFailure,
    MarketOutage,
    TradeRejection,
]


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of fault specs applied to one run.

    The spec order is part of the determinism contract: the injector
    realizes each probabilistic spec from its own named RNG stream indexed
    by position, so two identical plans realize identical fault patterns.
    An empty plan is the default and leaves runs bit-identical to unfaulted
    ones.
    """

    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(
                    f"fault specs must be FaultSpec instances, got "
                    f"{type(spec).__name__}"
                )
        object.__setattr__(self, "specs", tuple(self.specs))

    @property
    def is_empty(self) -> bool:
        """Whether the plan declares no faults at all."""
        return not self.specs

    def of_kind(self, kind: str) -> tuple[FaultSpec, ...]:
        """All specs whose kind tag equals ``kind`` (original order)."""
        return tuple(spec for spec in self.specs if spec.kind == kind)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready mapping (``{"faults": [...]}``)."""
        return {"faults": [spec.as_dict() for spec in self.specs]}

    def to_json(self, indent: int | None = 2) -> str:
        """The plan as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Reconstruct a plan from its :meth:`to_dict` form."""
        raw = payload.get("faults")
        if not isinstance(raw, list):
            raise ValueError('fault plan JSON must carry a "faults" list')
        specs: list[FaultSpec] = []
        for entry in raw:
            if not isinstance(entry, dict):
                raise ValueError(f"fault entry must be an object, got {entry!r}")
            fields = dict(entry)
            tag = fields.pop("kind", None)
            if not isinstance(tag, str) or tag not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {tag!r}; expected one of "
                    f"{sorted(FAULT_KINDS)}"
                )
            try:
                specs.append(FAULT_KINDS[tag](**fields))
            except TypeError as exc:
                raise ValueError(f"bad {tag} spec {entry!r}: {exc}") from exc
        return cls(specs=tuple(specs))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from a JSON string."""
        return cls.from_dict(json.loads(text))

    def __len__(self) -> int:
        return len(self.specs)


def load_plan(path: str | Path) -> FaultPlan:
    """Load a fault plan from a JSON file."""
    return FaultPlan.from_json(Path(path).read_text(encoding="utf-8"))
