"""Deterministic fault injection and graceful degradation.

``repro.faults`` declares infrastructure failures (edge outages, lost
bandit feedback, failed model downloads, market outages, rejected trades)
as a typed, JSON-serializable :class:`FaultPlan`, and realizes them
bit-reproducibly through :class:`FaultInjector` using dedicated named RNG
streams.  An empty plan is the default everywhere and leaves runs
bit-identical to unfaulted ones — the golden digests do not move.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FAULT_KINDS,
    DownloadFailure,
    EdgeOutage,
    FaultPlan,
    FaultSpec,
    FeedbackLoss,
    GilbertElliottLoss,
    MarketOutage,
    TradeRejection,
    load_plan,
    register_fault,
)

__all__ = [
    "DownloadFailure",
    "EdgeOutage",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FeedbackLoss",
    "GilbertElliottLoss",
    "MarketOutage",
    "TradeRejection",
    "load_plan",
    "register_fault",
]
