"""Shared slot kernels: the exact per-slot logic of the control loop.

The per-edge inference step (Algorithm 1's select/observe cycle plus fault
handling) and the system-level trading step (Algorithm 2's decide/observe
cycle plus the ledger/market bookkeeping) live here as small stateful
kernels.  :class:`~repro.sim.simulator.Simulator` drives them in a lockstep
loop; :mod:`repro.serve` drives the same kernels from asyncio actor tasks.
Because both runtimes execute the *same* code in the same floating-point
operation order, the serve runtime's virtual-clock mode is bit-identical to
``Simulator.run`` by construction (locked by the golden digests).

State is explicit: each kernel exposes ``state_dict()`` / ``load_state()``
so a serve snapshot can capture a quiescent slot boundary and a restored
process can resume mid-horizon without replaying.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.injector import FaultInjector
from repro.market.ledger import AllowanceLedger
from repro.market.market import CarbonMarket
from repro.nn.losses import squared_label_loss
from repro.obs.events import (
    FaultInjectedEvent,
    FeedbackLostEvent,
    ModelSwitchEvent,
    RetryEvent,
    TradeRejectedEvent,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.policies.selection import SelectionPolicy
from repro.policies.trading import TradeDecision, TradingContext, TradingPolicy
from repro.sim.scenario import Scenario

__all__ = [
    "EdgeSlotKernel",
    "EdgeSlotOutcome",
    "TradingSlotKernel",
    "class_index_map",
    "draw_pool_indices",
]


def class_index_map(scenario: Scenario) -> list[np.ndarray] | None:
    """Pool indices per class, when per-edge class mixes are in force."""
    weights = scenario.edge_class_weights  # (I, K) per-edge class mix
    if weights is None:
        return None
    labels = scenario.y_pool
    assert labels is not None  # enforced by Scenario validation
    return [np.nonzero(labels == k)[0] for k in range(weights.shape[1])]


def draw_pool_indices(
    scenario: Scenario,
    edge: int,
    count: int,
    rng: np.random.Generator,
    pool_size: int,
    class_indices: list[np.ndarray] | None,
) -> np.ndarray:
    """IID pool indices for one edge-slot.

    Uniform over the pool (the paper's single distribution D), or a
    two-stage draw — class by the edge's mix, then a uniform member of
    that class — under per-edge heterogeneity.
    """
    if class_indices is None:
        return rng.integers(0, pool_size, size=count)
    weights = scenario.edge_class_weights[edge]  # (K,) this edge's class mix
    classes = rng.choice(weights.size, size=count, p=weights)
    idx = np.empty(count, dtype=int)
    for k in np.unique(classes):
        members = class_indices[k]
        if members.size == 0:
            raise ValueError(f"class {k} has no pool members to sample")
        mask = classes == k
        idx[mask] = members[rng.integers(0, members.size, size=int(mask.sum()))]
    return idx


@dataclass(frozen=True)
class EdgeSlotOutcome:
    """What one edge contributed to one slot.

    ``arrivals`` is the raw workload offered to the edge; ``served`` is what
    actually ran inference (zero when the slot was shed under backpressure
    or dropped by an edge outage).  All cost fields are zero for shed or
    offline slots, mirroring the simulator's accounting.
    """

    t: int
    edge: int
    model: int
    switched: bool
    offline: bool
    shed: bool
    expected_loss: float
    slot_loss: float
    latency: float
    switch_cost: float
    emissions_kg: float
    correct: float
    arrivals: int
    served: int


_ZERO_COSTS = dict(
    expected_loss=0.0,
    slot_loss=0.0,
    latency=0.0,
    switch_cost=0.0,
    emissions_kg=0.0,
    correct=0.0,
)


class EdgeSlotKernel:
    """One edge's slot step: select, resolve downloads, infer, feed back.

    Owns everything the simulator used to keep per edge — the selection
    policy, the data-draw RNG stream, download-retry state, and the delayed
    feedback queue — so the simulator loop and a serve actor task execute
    identical logic.
    """

    def __init__(
        self,
        scenario: Scenario,
        policy: SelectionPolicy,
        edge: int,
        *,
        data_rng: np.random.Generator,
        class_indices: list[np.ndarray] | None = None,
        injector: FaultInjector | None = None,
        tracer: Tracer | None = None,
        label_delay: int = 0,
        live_inference: bool = False,
    ) -> None:
        self.scenario = scenario
        self.policy = policy
        self.edge = int(edge)
        self.data_rng = data_rng
        self.class_indices = class_indices
        self.injector = injector
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.label_delay = label_delay
        self.live_inference = live_inference
        self.pool_size = scenario.profiles[0].pool_size
        self.switch_cost = float(scenario.effective_switch_costs()[edge])
        self.previous_model = -1
        self.retry_wait = 0
        self.retry_backoff = 0
        self.retry_attempts = 0
        # Delayed label feedback (paper Step 2.3): (slot, model, loss) of
        # observations still in flight when ``label_delay > 0``.
        self.pending_feedback: list[tuple[int, int, float]] = []

    def step(
        self,
        t: int,
        count: int,
        indices: np.ndarray | None = None,
        shed: bool = False,
    ) -> EdgeSlotOutcome:
        """Execute slot ``t`` with ``count`` arrivals; return the outcome.

        ``indices`` lets a stream adapter pre-draw the slot's pool indices
        (from the same ``data-<edge>`` stream, so parity holds either way).
        ``shed=True`` records a backpressure-shed slot: the policy still
        advances its block schedule via ``observe_lost``, but nothing runs.
        """
        policy = self.policy
        tracer = self.tracer
        tracing = tracer.enabled
        model = policy.select(t)

        if shed:
            # The payload was dropped at the queue; keep Algorithm 1's block
            # accounting consistent by routing the slot through the lost-
            # feedback path (blocks must still close on schedule).
            policy.observe_lost(t, model)
            return EdgeSlotOutcome(
                t=t, edge=self.edge, model=int(model), switched=False,
                offline=False, shed=True, arrivals=int(count), served=0,
                **_ZERO_COSTS,
            )

        injector = self.injector
        if injector is not None and injector.edge_offline(t, self.edge):
            # Edge down: draw the slot's sample indices anyway so RNG
            # streams stay aligned with the unfaulted run, then drop the
            # workload unserved — no inference, no emissions, no feedback.
            if indices is None:
                draw_pool_indices(
                    self.scenario, self.edge, count, self.data_rng,
                    self.pool_size, self.class_indices,
                )
            policy.observe_lost(t, model)
            if tracing:
                tracer.emit(
                    FaultInjectedEvent(t=t, kind="edge_outage", edge=self.edge)
                )
            return EdgeSlotOutcome(
                t=t, edge=self.edge, model=int(model), switched=False,
                offline=True, shed=False, arrivals=int(count), served=0,
                **_ZERO_COSTS,
            )

        # Resolve which model actually serves this slot: a switch requires a
        # download, which fault plans can fail — the edge then keeps its
        # hosted model and retries under capped exponential backoff.
        # Initial provisioning never fails.
        hosted = self.previous_model
        serve = model
        if injector is not None and hosted >= 0 and model != hosted:
            if self.retry_wait > 0:
                self.retry_wait -= 1
                serve = hosted
            elif injector.download_failed(t, self.edge):
                self.retry_attempts += 1
                cap = injector.backoff_cap(t, self.edge)
                self.retry_backoff = min(max(2 * self.retry_backoff, 1), cap)
                self.retry_wait = self.retry_backoff
                serve = hosted
                if tracing:
                    tracer.emit(
                        FaultInjectedEvent(
                            t=t, kind="download_failure", edge=self.edge
                        )
                    )
                    tracer.emit(
                        RetryEvent(
                            t=t,
                            edge=self.edge,
                            hosted_model=hosted,
                            target_model=int(model),
                            attempt=self.retry_attempts,
                            backoff_slots=self.retry_backoff,
                        )
                    )
        if injector is not None and serve == model:
            self.retry_wait = 0
            self.retry_backoff = 0
            self.retry_attempts = 0

        switched = bool(serve != self.previous_model)
        if switched and tracing:
            tracer.emit(
                ModelSwitchEvent(
                    t=t,
                    edge=self.edge,
                    previous_model=self.previous_model,
                    model=int(serve),
                    switch_cost=self.switch_cost,
                )
            )
        self.previous_model = int(serve)

        if indices is None:
            idx = draw_pool_indices(
                self.scenario, self.edge, count, self.data_rng,
                self.pool_size, self.class_indices,
            )
        else:
            idx = indices
        profile = self.scenario.profiles[serve]
        losses = self._sample_losses(profile, idx)
        slot_loss = float(losses.mean()) if idx.size else 0.0
        latency = float(self.scenario.latencies[self.edge, serve])
        if serve != model:
            # The chosen model never ran, so its loss is unobservable this
            # slot (bandit feedback).
            policy.observe_lost(t, model)
        elif idx.size == 0:
            # An empty slot (e.g. ingress deferred every request) offers no
            # loss sample either.
            policy.observe_lost(t, model)
        elif injector is not None and injector.feedback_lost(t, self.edge):
            policy.observe_lost(t, model)
            if tracing:
                tracer.emit(
                    FeedbackLostEvent(t=t, edge=self.edge, model=int(model))
                )
        elif self.label_delay == 0:
            policy.observe(t, model, slot_loss + latency)
        else:
            self.pending_feedback.append((t, model, slot_loss + latency))

        emissions_kg = float(
            self.scenario.energy.slot_emissions_kg(
                self.edge, serve, count, switched
            )
        )
        return EdgeSlotOutcome(
            t=t,
            edge=self.edge,
            model=int(serve),
            switched=switched,
            offline=False,
            shed=False,
            expected_loss=float(profile.expected_loss),
            slot_loss=slot_loss,
            latency=latency,
            switch_cost=self.switch_cost if switched else 0.0,
            emissions_kg=emissions_kg,
            correct=float(profile.correct_per_sample[idx].sum()),
            arrivals=int(count),
            served=int(count),
        )

    def step_offline(self, t: int, count: int) -> EdgeSlotOutcome:
        """Execute slot ``t`` as a missed (offline) slot with real arrivals.

        The restart path of the sharded tier replays a dead worker's
        missed slots through this: the selection policy advances exactly
        as it would through an :class:`~repro.faults.plan.EdgeOutage`
        (``select`` then ``observe_lost``, keeping Algorithm 1's block
        schedule closing on time), the ``count`` arrivals are recorded as
        dropped-offline so ``in == served + shed + offline`` stays exact,
        and nothing runs — no draws, no emissions, no feedback.
        """
        model = self.policy.select(t)
        self.policy.observe_lost(t, model)
        return EdgeSlotOutcome(
            t=t, edge=self.edge, model=int(model), switched=False,
            offline=True, shed=False, arrivals=int(count), served=0,
            **_ZERO_COSTS,
        )

    def deliver_due(self, due_slot: int) -> None:
        """Deliver all queued slot losses whose slot is <= ``due_slot``."""
        pending = self.pending_feedback
        while pending and pending[0][0] <= due_slot:
            slot, model, loss = pending.pop(0)
            self.policy.observe(slot, model, loss)

    def _sample_losses(self, profile, idx: np.ndarray) -> np.ndarray:
        """Per-sample losses for the drawn pool indices.

        The memoized table lookup is exact; ``live_inference=True``
        recomputes the forward pass on the drawn samples for validation
        (requires the scenario to carry the shared data pool).
        """
        if self.live_inference:
            if profile.network is None:
                raise ValueError(
                    f"profile {profile.name!r} has no network for live inference"
                )
            if self.scenario.x_pool is None or self.scenario.y_pool is None:
                raise ValueError("scenario carries no data pool for live inference")
            proba = profile.network.predict_proba(self.scenario.x_pool[idx])
            return squared_label_loss(proba, self.scenario.y_pool[idx])
        return profile.loss_per_sample[idx]

    def state_dict(self) -> dict[str, object]:
        """Picklable control state (the scenario itself is reattachable)."""
        return {
            "policy": self.policy,
            "data_rng": self.data_rng,
            "previous_model": self.previous_model,
            "retry_wait": self.retry_wait,
            "retry_backoff": self.retry_backoff,
            "retry_attempts": self.retry_attempts,
            "pending_feedback": list(self.pending_feedback),
        }

    def load_state(self, state: dict[str, object]) -> None:
        """Restore control state captured by :meth:`state_dict`."""
        self.policy = state["policy"]
        self.data_rng = state["data_rng"]
        self.previous_model = int(state["previous_model"])
        self.retry_wait = int(state["retry_wait"])
        self.retry_backoff = int(state["retry_backoff"])
        self.retry_attempts = int(state["retry_attempts"])
        self.pending_feedback = list(state["pending_feedback"])


class TradingSlotKernel:
    """The system-level trading step run once per slot.

    Owns Algorithm 2's policy alongside the market and ledger, plus the
    deferred-intent state used when market faults block execution.  The
    running emissions aggregates reproduce the simulator's exact context
    arithmetic (``prev_emissions`` and the running mean are updated *after*
    the slot's decision, matching the paper's information structure).
    """

    def __init__(
        self,
        scenario: Scenario,
        policy: TradingPolicy,
        market: CarbonMarket,
        ledger: AllowanceLedger,
        *,
        injector: FaultInjector | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.scenario = scenario
        self.policy = policy
        self.market = market
        self.ledger = ledger
        self.injector = injector
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Trade intent deferred by market outages/rejections, reconciled at
        # the next executable slot (bounded by the per-slot trade bound).
        self.pending_buy = 0.0
        self.pending_sell = 0.0
        self.prev_emissions = 0.0
        self.emissions_sum = 0.0
        # Live-reconfiguration multiplier on the per-slot trade bound: the
        # bound scales with the active-fleet fraction so a half-size fleet
        # trades at half the volume cap.  Exactly 1.0 for unreconfigured
        # runs, so the fast path below keeps bit parity with the simulator.
        self.fleet_scale = 1.0

    @property
    def trade_bound(self) -> float:
        """The per-slot trade bound under the current fleet scale."""
        bound = self.scenario.trade_bound
        if self.fleet_scale == 1.0:  # noqa: RPL003 -- exact sentinel, set by assignment
            return bound
        return bound * self.fleet_scale

    def rescale_fleet(self, factor: float) -> None:
        """Apply a fleet-size change event: active count scaled by ``factor``.

        Rescales the trade bound, clips deferred intent to the new bound,
        and forwards the event to the trading policy so dual state scales
        deterministically.  ``factor == 1.0`` is an exact no-op — the
        contract behind no-op reconfiguration plans staying bit-identical
        to unreconfigured runs.
        """
        if factor <= 0.0:
            raise ValueError(f"fleet factor must be positive, got {factor}")
        if factor == 1.0:  # noqa: RPL003 -- exact sentinel no-op contract
            return
        self.fleet_scale *= factor
        bound = self.trade_bound
        self.pending_buy = min(self.pending_buy, bound)
        self.pending_sell = min(self.pending_sell, bound)
        self.policy.rescale_fleet(factor)

    def context(self, t: int) -> TradingContext:
        """The information set available to the policy at slot ``t``."""
        scenario = self.scenario
        market = self.market
        snapshot = self.ledger.snapshot()
        prev_buy = market.buy_price(t - 1) if t > 0 else market.buy_price(0)
        prev_sell = market.sell_price(t - 1) if t > 0 else market.sell_price(0)
        prev_emissions = self.prev_emissions if t > 0 else 0.0
        mean_emissions = (
            self.emissions_sum / t if t > 0 else scenario.estimated_slot_emissions()
        )
        return TradingContext(
            t=t,
            horizon=scenario.horizon,
            cap=scenario.config.carbon_cap_kg,
            buy_price=market.buy_price(t),
            sell_price=market.sell_price(t),
            prev_buy_price=prev_buy,
            prev_sell_price=prev_sell,
            prev_emissions=prev_emissions,
            cumulative_emissions=snapshot.cumulative_emissions,
            holdings=snapshot.holdings,
            mean_slot_emissions=mean_emissions,
            trade_bound=self.trade_bound,
        )

    def step(self, t: int, slot_emissions: float) -> tuple[float, float, float]:
        """Decide, execute (or defer), and observe slot ``t``'s trade.

        Returns ``(bought, sold, cost)`` as realized at the market —
        all zero when a fault blocked execution.
        """
        tracer = self.tracer
        bound = self.trade_bound
        context = self.context(t)
        decision = self.policy.decide(context)
        decision = TradeDecision(
            buy=min(max(decision.buy, 0.0), bound),
            sell=min(max(decision.sell, 0.0), bound),
        )
        injector = self.injector
        if injector is not None and injector.trade_blocked(t):
            # Market unreachable or order bounced: nothing executes, the
            # ledger records realized (zero) volumes, and the intent carries
            # over — bounded by the per-slot trade bound, so long outages
            # shed excess rather than accumulate it.  The dual update sees
            # only the realized trade.
            self.pending_buy = min(self.pending_buy + decision.buy, bound)
            self.pending_sell = min(self.pending_sell + decision.sell, bound)
            self.ledger.record_rejection(decision.buy, decision.sell)
            self.ledger.record(slot_emissions, 0.0, 0.0)
            self.policy.observe(
                context, TradeDecision(buy=0.0, sell=0.0), slot_emissions
            )
            if tracer.enabled:
                tracer.emit(
                    TradeRejectedEvent(
                        t=t,
                        buy=decision.buy,
                        sell=decision.sell,
                        pending_buy=self.pending_buy,
                        pending_sell=self.pending_sell,
                    )
                )
            realized = (0.0, 0.0, 0.0)
        else:
            if self.pending_buy > 0.0 or self.pending_sell > 0.0:
                executed = TradeDecision(
                    buy=min(decision.buy + self.pending_buy, bound),
                    sell=min(decision.sell + self.pending_sell, bound),
                )
                self.pending_buy = 0.0
                self.pending_sell = 0.0
            else:
                executed = decision
            trade = self.market.execute(t, executed.buy, executed.sell)
            self.ledger.record(slot_emissions, executed.buy, executed.sell)
            self.policy.observe(context, executed, slot_emissions)
            realized = (trade.bought, trade.sold, trade.cost)
        self.emissions_sum += slot_emissions
        self.prev_emissions = float(slot_emissions)
        return realized

    def state_dict(self) -> dict[str, object]:
        """Picklable control state (the scenario itself is reattachable)."""
        return {
            "policy": self.policy,
            "market": self.market,
            "ledger": self.ledger,
            "pending_buy": self.pending_buy,
            "pending_sell": self.pending_sell,
            "prev_emissions": self.prev_emissions,
            "emissions_sum": self.emissions_sum,
            "fleet_scale": self.fleet_scale,
        }

    def load_state(self, state: dict[str, object]) -> None:
        """Restore control state captured by :meth:`state_dict`."""
        self.policy = state["policy"]
        self.market = state["market"]
        self.ledger = state["ledger"]
        self.pending_buy = float(state["pending_buy"])
        self.pending_sell = float(state["pending_sell"])
        self.prev_emissions = float(state["prev_emissions"])
        self.emissions_sum = float(state["emissions_sum"])
        # Absent in snapshots written before live reconfiguration existed.
        self.fleet_scale = float(state.get("fleet_scale", 1.0))
