"""Scenario assembly: traces + topology + profiles + energy model.

A :class:`Scenario` bundles every exogenous input of one experiment.  All
randomness is derived from the config's ``seed`` through named streams, so a
config maps to exactly one scenario.  The trained zoo is keyed by
``zoo_seed`` and shared across scenarios (the paper fixes the models and
varies only algorithm/stream randomness between runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.energy.model import (
    EnergyModel,
    THETA_KWH_PER_BYTE,
    sample_inference_energies,
    sample_latencies,
)
from repro.sim.config import ScenarioConfig
from repro.sim.profiles import ModelProfile, synthetic_profiles
from repro.traces.carbon_prices import CarbonPriceModel, PriceSeries
from repro.traces.geo import generate_topology
from repro.traces.workload import WorkloadModel
from repro.utils.rng import RngFactory

__all__ = ["Scenario", "build_scenario", "build_scenario_with_profiles"]


@dataclass(frozen=True)
class Scenario:
    """Fully materialized inputs of one experiment."""

    config: ScenarioConfig
    profiles: list[ModelProfile]
    energy: EnergyModel
    latencies: np.ndarray  # (I, N) computation cost v_{i,n}, seconds
    download_delays: np.ndarray  # (I,) communication cost u_i, seconds
    prices: PriceSeries
    workload_means: np.ndarray  # (I, T) mean arrivals per slot
    trade_bound: float
    x_pool: np.ndarray | None = None  # shared held-out features (live checks)
    y_pool: np.ndarray | None = None
    # Optional (I, K) per-edge class mix: edge i draws class k with
    # probability edge_class_weights[i, k] (requires y_pool).  None = the
    # paper's single global distribution D.
    edge_class_weights: np.ndarray | None = None
    _expected_losses: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        cfg = self.config
        if len(self.profiles) != cfg.num_models:
            raise ValueError("profile count does not match config.num_models")
        if self.latencies.shape != (cfg.num_edges, cfg.num_models):
            raise ValueError("latencies must be (num_edges, num_models)")
        if self.download_delays.shape != (cfg.num_edges,):
            raise ValueError("download_delays must be (num_edges,)")
        if self.prices.horizon != cfg.horizon:
            raise ValueError("price horizon does not match config.horizon")
        if self.workload_means.shape != (cfg.num_edges, cfg.horizon):
            raise ValueError("workload_means must be (num_edges, horizon)")
        if self.trade_bound <= 0:
            raise ValueError("trade_bound must be positive")
        if self.edge_class_weights is not None:
            if self.y_pool is None:
                raise ValueError("edge_class_weights requires a labelled data pool")
            weights = self.edge_class_weights
            num_classes = int(np.max(self.y_pool)) + 1
            if weights.shape != (cfg.num_edges, num_classes):
                raise ValueError(
                    f"edge_class_weights must be (num_edges, num_classes) = "
                    f"({cfg.num_edges}, {num_classes}), got {weights.shape}"
                )
            if np.any(weights < 0) or not np.allclose(weights.sum(axis=1), 1.0):
                raise ValueError("each edge's class weights must form a distribution")
        object.__setattr__(
            self,
            "_expected_losses",
            np.array([p.expected_loss for p in self.profiles]),
        )

    @property
    def num_edges(self) -> int:
        """Number of edges I."""
        return self.config.num_edges

    @property
    def num_models(self) -> int:
        """Number of models N."""
        return self.config.num_models

    @property
    def horizon(self) -> int:
        """Number of slots T."""
        return self.config.horizon

    @property
    def expected_losses(self) -> np.ndarray:
        """(N,) posterior mean loss per model."""
        return self._expected_losses.copy()

    @property
    def model_sizes(self) -> np.ndarray:
        """(N,) serialized model sizes in bytes."""
        return np.array([p.size_bytes for p in self.profiles])

    def expected_losses_per_edge(self) -> np.ndarray:
        """(I, N) expected loss of each model under each edge's data mix.

        With the paper's single global distribution this is the same row
        repeated; with ``edge_class_weights`` set, each row reweights the
        models' per-class mean losses by that edge's class mix, so different
        edges can have different best models.
        """
        cfg = self.config
        if self.edge_class_weights is None or self.y_pool is None:
            return np.tile(self._expected_losses, (cfg.num_edges, 1))
        num_classes = self.edge_class_weights.shape[1]
        class_means = np.zeros((cfg.num_models, num_classes))
        for k in range(num_classes):
            mask = self.y_pool == k
            if not np.any(mask):
                continue
            for n, profile in enumerate(self.profiles):
                class_means[n, k] = float(profile.loss_per_sample[mask].mean())
        return self.edge_class_weights @ class_means.T

    def effective_switch_costs(self) -> np.ndarray:
        """(I,) download delays scaled by the switching weight.

        This is what Algorithm 1 consumes to size its blocks and what the
        objective charges per switch.
        """
        return self.config.switching_weight * self.download_delays

    def estimated_slot_emissions(self) -> float:
        """Rough expected total emissions per slot (for bounds/calibration)."""
        mean_arrivals = float(self.workload_means.sum(axis=0).mean())
        mean_phi = float(self.energy.phi_kwh.mean())
        return (
            mean_arrivals
            * mean_phi
            * self.energy.requests_per_arrival
            * self.energy.rho_kg_per_kwh
        )


def _build_profiles(
    config: ScenarioConfig, rng: RngFactory
) -> tuple[list[ModelProfile], np.ndarray | None, np.ndarray | None]:
    if config.dataset == "synthetic":
        profiles = synthetic_profiles(
            config.num_models, rng.get("profiles"), pool_size=config.n_test
        )
        return profiles, None, None
    from repro.sim.zoo import trained_pool, trained_profiles

    profiles = trained_profiles(
        config.dataset,
        zoo_seed=config.zoo_seed,
        n_train=config.n_train,
        n_test=config.n_test,
        image_size=config.image_size,
    )
    if len(profiles) != config.num_models:
        raise ValueError(
            f"the {config.dataset} zoo has {len(profiles)} models; "
            f"config.num_models must equal that (got {config.num_models})"
        )
    x_pool, y_pool = trained_pool(
        config.dataset,
        zoo_seed=config.zoo_seed,
        n_train=config.n_train,
        n_test=config.n_test,
        image_size=config.image_size,
    )
    return profiles, x_pool, y_pool


def build_scenario(config: ScenarioConfig) -> Scenario:
    """Materialize the scenario described by ``config``."""
    rng = RngFactory(config.seed)
    profiles, x_pool, y_pool = _build_profiles(config, rng)
    return build_scenario_with_profiles(config, profiles, x_pool=x_pool, y_pool=y_pool)


def build_scenario_with_profiles(
    config: ScenarioConfig,
    profiles: list[ModelProfile],
    x_pool: np.ndarray | None = None,
    y_pool: np.ndarray | None = None,
) -> Scenario:
    """Assemble a scenario around an explicit model-profile list.

    Used for extended zoos (e.g. quantized variants as extra bandit arms);
    ``config.num_models`` must equal ``len(profiles)``.  Traces and derived
    quantities (delays, energies, prices, workload) are built exactly as in
    :func:`build_scenario` from ``config.seed``.
    """
    if len(profiles) != config.num_models:
        raise ValueError(
            f"config.num_models ({config.num_models}) must equal the number "
            f"of profiles ({len(profiles)})"
        )
    rng = RngFactory(config.seed)
    sizes = np.array([p.size_bytes for p in profiles])

    topology = generate_topology(config.num_edges, rng.get("geo"))
    download_delays = topology.download_delays()
    latencies = sample_latencies(
        config.num_edges, config.num_models, rng.get("latency"), model_sizes=sizes
    )
    phi = sample_inference_energies(config.num_models, rng.get("energy"), model_sizes=sizes)
    energy = EnergyModel(
        phi_kwh=phi,
        theta_kwh_per_byte=np.full(config.num_edges, THETA_KWH_PER_BYTE),
        model_sizes_bytes=sizes,
        rho_kg_per_kwh=config.rho_kg_per_kwh,
        requests_per_arrival=config.requests_per_arrival,
    )
    prices = CarbonPriceModel().generate(config.horizon, rng.get("prices"))
    workload = WorkloadModel(base_mean=config.workload_base_mean).generate(
        config.num_edges, config.horizon, rng.get("workload")
    )

    mean_arrivals = float(workload.sum(axis=0).mean())
    mean_slot_emissions = (
        mean_arrivals * float(phi.mean()) * config.requests_per_arrival * config.rho_kg_per_kwh
    )
    trade_bound = max(config.trade_bound_factor * mean_slot_emissions, 1e-9)

    return Scenario(
        config=config,
        profiles=profiles,
        energy=energy,
        latencies=latencies,
        download_delays=download_delays,
        prices=prices,
        workload_means=workload,
        trade_bound=trade_bound,
        x_pool=x_pool,
        y_pool=y_pool,
    )
