"""Trained model-zoo cache.

The paper fixes the models and averages 10 runs over *algorithm* randomness,
so the zoo is trained once per (dataset, zoo_seed, data sizes) and reused
across runs and sweeps.  Training six numpy networks takes a few seconds;
the in-process cache makes repeated scenario builds free.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import make_cifar10_like, make_mnist_like
from repro.nn.models import (
    ModelSpec,
    build_model,
    cifar_like_zoo_specs,
    mnist_like_zoo_specs,
)
from repro.nn.optimizers import SGD
from repro.nn.training import Trainer
from repro.sim.profiles import ModelProfile, profiles_from_networks
from repro.utils.rng import spawn_generator

__all__ = [
    "trained_profiles",
    "trained_pool",
    "quantized_trained_profiles",
    "specialist_trained_profiles",
    "clear_zoo_cache",
]

_CACHE: dict[tuple, tuple[list[ModelProfile], np.ndarray, np.ndarray]] = {}


def clear_zoo_cache() -> None:
    """Drop all cached trained zoos (tests only)."""
    _CACHE.clear()


def _train_zoo(
    specs: list[ModelSpec],
    x_train: np.ndarray,
    y_train: np.ndarray,
    zoo_seed: int,
) -> list:
    networks = []
    for index, spec in enumerate(specs):
        init_rng = spawn_generator(zoo_seed, f"init-{spec.name}-{index}")
        train_rng = spawn_generator(zoo_seed, f"train-{spec.name}-{index}")
        network = build_model(spec, init_rng)
        trainer = Trainer(network, optimizer=SGD(lr=0.05, momentum=0.9))
        trainer.fit(
            x_train,
            y_train,
            epochs=spec.epochs,
            batch_size=64,
            rng=train_rng,
        )
        networks.append(network)
    return networks


def _materialize(
    dataset: str, zoo_seed: int, n_train: int, n_test: int, image_size: int
) -> tuple[list[ModelProfile], np.ndarray, np.ndarray]:
    key = (dataset, zoo_seed, n_train, n_test, image_size)
    if key in _CACHE:
        return _CACHE[key]
    data_rng = spawn_generator(zoo_seed, f"dataset-{dataset}")
    if dataset == "mnist":
        data = make_mnist_like(data_rng, n_train=n_train, n_test=n_test, image_size=image_size)
        specs = mnist_like_zoo_specs(image_size=image_size, num_classes=data.num_classes)
    elif dataset == "cifar10":
        data = make_cifar10_like(data_rng, n_train=n_train, n_test=n_test, image_size=image_size)
        specs = cifar_like_zoo_specs(image_size=image_size, num_classes=data.num_classes)
    else:
        raise ValueError(f"unknown trained dataset {dataset!r}")
    networks = _train_zoo(specs, data.x_train, data.y_train, zoo_seed)
    profiles = profiles_from_networks(networks, data.x_test, data.y_test)
    _CACHE[key] = (profiles, data.x_test, data.y_test)
    return _CACHE[key]


def trained_profiles(
    dataset: str,
    zoo_seed: int = 1234,
    n_train: int = 2000,
    n_test: int = 4000,
    image_size: int = 8,
) -> list[ModelProfile]:
    """Return (cached) trained profiles for ``dataset`` in {mnist, cifar10}."""
    return _materialize(dataset, zoo_seed, n_train, n_test, image_size)[0]


def trained_pool(
    dataset: str,
    zoo_seed: int = 1234,
    n_train: int = 2000,
    n_test: int = 4000,
    image_size: int = 8,
) -> tuple[np.ndarray, np.ndarray]:
    """The shared held-out pool (features, labels) the profiles index into."""
    _, x_pool, y_pool = _materialize(dataset, zoo_seed, n_train, n_test, image_size)
    return x_pool, y_pool


def quantized_trained_profiles(
    dataset: str,
    bits: int,
    zoo_seed: int = 1234,
    n_train: int = 2000,
    n_test: int = 4000,
    image_size: int = 8,
) -> list[ModelProfile]:
    """Quantized variants of the trained zoo (future-work extension).

    Each trained network is copied, its weights quantized to ``bits`` bits
    (``repro.nn.quantization``), and re-evaluated on the shared pool, so the
    variant has its own genuine loss table, accuracy and (smaller) size —
    ready to serve as additional bandit arms alongside the float models.
    """
    from repro.nn.quantization import quantize_network

    key = (dataset, zoo_seed, n_train, n_test, image_size, "quantized", bits)
    if key in _CACHE:
        return _CACHE[key][0]
    profiles, x_pool, y_pool = _materialize(
        dataset, zoo_seed, n_train, n_test, image_size
    )
    quantized_networks = [
        quantize_network(profile.network, bits)
        for profile in profiles
        if profile.network is not None
    ]
    if len(quantized_networks) != len(profiles):
        raise ValueError("every trained profile must carry its network")
    quantized = profiles_from_networks(quantized_networks, x_pool, y_pool)
    _CACHE[key] = (quantized, x_pool, y_pool)
    return quantized


def specialist_trained_profiles(
    dataset: str,
    zoo_seed: int = 1234,
    n_train: int = 2000,
    n_test: int = 4000,
    image_size: int = 8,
    classes_per_model: int = 5,
) -> list[ModelProfile]:
    """A zoo of class specialists (per-edge heterogeneity experiments).

    Model ``n`` is trained only on the ``classes_per_model`` classes
    ``{n, n+1, ...} mod K``, so each model excels on its slice of the label
    space and degrades elsewhere.  Against per-edge class mixes this makes
    the best model genuinely edge-dependent, which the paper's global-
    distribution assumption rules out.
    """
    key = (dataset, zoo_seed, n_train, n_test, image_size, "spec", classes_per_model)
    if key in _CACHE:
        return _CACHE[key][0]
    profiles, x_pool, y_pool = _materialize(
        dataset, zoo_seed, n_train, n_test, image_size
    )
    data_rng = spawn_generator(zoo_seed, f"dataset-{dataset}")
    if dataset == "mnist":
        data = make_mnist_like(data_rng, n_train=n_train, n_test=n_test, image_size=image_size)
        specs = mnist_like_zoo_specs(image_size=image_size, num_classes=data.num_classes)
    elif dataset == "cifar10":
        data = make_cifar10_like(data_rng, n_train=n_train, n_test=n_test, image_size=image_size)
        specs = cifar_like_zoo_specs(image_size=image_size, num_classes=data.num_classes)
    else:
        raise ValueError(f"unknown trained dataset {dataset!r}")
    num_classes = data.num_classes
    if not 1 <= classes_per_model <= num_classes:
        raise ValueError(
            f"classes_per_model must be in [1, {num_classes}], got {classes_per_model}"
        )
    networks = []
    for index, spec in enumerate(specs):
        allowed = {(index + j) % num_classes for j in range(classes_per_model)}
        mask = np.isin(data.y_train, sorted(allowed))
        init_rng = spawn_generator(zoo_seed, f"spec-init-{spec.name}-{index}")
        train_rng = spawn_generator(zoo_seed, f"spec-train-{spec.name}-{index}")
        network = build_model(spec, init_rng)
        network.name = f"{spec.name}-spec{index}"
        trainer = Trainer(network, optimizer=SGD(lr=0.05, momentum=0.9))
        trainer.fit(
            data.x_train[mask],
            data.y_train[mask],
            epochs=spec.epochs,
            batch_size=64,
            rng=train_rng,
        )
        networks.append(network)
    specialist = profiles_from_networks(networks, x_pool, y_pool)
    _CACHE[key] = (specialist, x_pool, y_pool)
    return specialist
