"""Model profiles: everything the simulator needs to know about one model.

A profile caches the model's per-sample squared loss and correctness over
the held-out data pool.  During simulation, arrivals are realized as indices
into that pool, so looking losses up in the table is *numerically identical*
to running the stored network forward on the drawn samples — the lookup is a
memoized forward pass, not an approximation (verified by a test).  The
``network`` handle is retained for live-inference validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.losses import squared_label_loss
from repro.nn.network import Sequential
from repro.utils.validation import check_finite, check_positive

__all__ = ["ModelProfile", "profiles_from_networks", "synthetic_profiles"]

_FORWARD_BATCH = 1024


@dataclass(frozen=True)
class ModelProfile:
    """Per-model data consumed by the simulator.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"cnn-64"``.
    size_bytes:
        Serialized model size ``W_n`` (drives transfer delay and energy).
    loss_per_sample:
        (P,) squared loss of this model on each pool sample.
    correct_per_sample:
        (P,) whether this model classifies each pool sample correctly.
    network:
        Optional live network for validation runs.
    """

    name: str
    size_bytes: float
    loss_per_sample: np.ndarray
    correct_per_sample: np.ndarray
    network: Sequential | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        check_positive(self.size_bytes, "size_bytes")
        losses = check_finite(self.loss_per_sample, "loss_per_sample")
        if losses.ndim != 1 or losses.size == 0:
            raise ValueError("loss_per_sample must be a non-empty vector")
        if np.any(losses < 0):
            raise ValueError("losses must be non-negative")
        if self.correct_per_sample.shape != losses.shape:
            raise ValueError("correct_per_sample must align with loss_per_sample")

    @property
    def pool_size(self) -> int:
        """Number of samples in the evaluation pool."""
        return int(self.loss_per_sample.size)

    @property
    def expected_loss(self) -> float:
        """Posterior mean inference loss — the estimate of ``E[l_n]``."""
        return float(self.loss_per_sample.mean())

    @property
    def loss_std(self) -> float:
        """Standard deviation of the per-sample loss."""
        return float(self.loss_per_sample.std())

    @property
    def accuracy(self) -> float:
        """Pool classification accuracy."""
        return float(np.mean(self.correct_per_sample))


def profiles_from_networks(
    networks: list[Sequential],
    x_pool: np.ndarray,
    y_pool: np.ndarray,
) -> list[ModelProfile]:
    """Evaluate each trained network on the pool and build its profile."""
    if x_pool.shape[0] != y_pool.shape[0] or x_pool.shape[0] == 0:
        raise ValueError("pool features/labels misaligned or empty")
    profiles = []
    for network in networks:
        losses = np.empty(x_pool.shape[0])
        correct = np.empty(x_pool.shape[0], dtype=bool)
        for start in range(0, x_pool.shape[0], _FORWARD_BATCH):
            stop = min(start + _FORWARD_BATCH, x_pool.shape[0])
            proba = network.predict_proba(x_pool[start:stop])
            losses[start:stop] = squared_label_loss(proba, y_pool[start:stop])
            correct[start:stop] = np.argmax(proba, axis=1) == y_pool[start:stop]
        profiles.append(
            ModelProfile(
                name=network.name,
                size_bytes=float(network.size_bytes()),
                loss_per_sample=losses,
                correct_per_sample=correct,
                network=network,
            )
        )
    return profiles


def synthetic_profiles(
    num_models: int,
    rng: np.random.Generator,
    pool_size: int = 2000,
    loss_means: np.ndarray | None = None,
) -> list[ModelProfile]:
    """Fast NN-free profiles for unit tests and large sweeps.

    Per-sample losses are Beta-distributed scaled to [0, 2] (the squared-loss
    range), with model means spread over [0.15, 1.1] unless given; model
    sizes span 0.05-2 MB and are anti-correlated with loss (bigger models are
    better, as in the trained zoos); accuracy is tied inversely to the loss
    mean.
    """
    check_positive(num_models, "num_models")
    check_positive(pool_size, "pool_size")
    if loss_means is None:
        loss_means = np.linspace(0.12, 1.35, num_models)
    means = check_finite(loss_means, "loss_means")
    if means.size != num_models:
        raise ValueError("loss_means length must equal num_models")
    if np.any((means <= 0) | (means >= 2)):
        raise ValueError("loss means must lie strictly inside (0, 2)")
    profiles = []
    # Bigger models achieve lower loss: map loss rank inversely to size,
    # with multiplicative jitter so sizes are not perfectly ordered.
    spread = means.max() - means.min()
    quality = (means.max() - means) / spread if spread > 0 else np.full(num_models, 0.5)
    sizes = (5e4 + quality * (2e6 - 5e4)) * rng.uniform(0.85, 1.15, size=num_models)
    for n in range(num_models):
        mean01 = means[n] / 2.0  # Beta mean in (0, 1)
        concentration = 8.0
        a = mean01 * concentration
        b = (1.0 - mean01) * concentration
        losses = 2.0 * rng.beta(a, b, size=pool_size)
        accuracy = float(np.clip(1.0 - mean01, 0.05, 0.98))
        correct = rng.random(pool_size) < accuracy
        profiles.append(
            ModelProfile(
                name=f"synthetic-{n}",
                size_bytes=float(sizes[n]),
                loss_per_sample=losses,
                correct_per_sample=correct,
            )
        )
    return profiles
