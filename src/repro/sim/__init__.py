"""Trace-driven cloud-edge simulation engine."""

from repro.sim.config import CostWeights, ScenarioConfig
from repro.sim.profiles import ModelProfile, profiles_from_networks, synthetic_profiles
from repro.sim.scenario import Scenario, build_scenario, build_scenario_with_profiles
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulator

__all__ = [
    "CostWeights",
    "ScenarioConfig",
    "ModelProfile",
    "profiles_from_networks",
    "synthetic_profiles",
    "Scenario",
    "build_scenario",
    "build_scenario_with_profiles",
    "SimulationResult",
    "Simulator",
]
