"""Vectorized fast path of :meth:`repro.sim.simulator.Simulator.run`.

The scalar reference loop executes ``horizon x num_edges`` full
:class:`~repro.sim.kernel.EdgeSlotKernel` steps — each one paying for a
frozen-dataclass outcome, per-field float conversions, energy-model method
dispatch, and fault/tracer bookkeeping that a clean run never uses.  This
module re-executes the *same arithmetic in the same floating-point order*
with the per-edge-slot overhead stripped out and the pure-array parts
batched, so the result is **bit-identical** to the scalar path (locked by
the pinned golden digests and by ``tests/test_vectorized.py``).

The fast path runs in two phases:

* **Phase A (selection)** resolves every edge's Algorithm-1 trajectory.
  When the whole fleet runs plain :class:`OnlineModelSelection`, this is
  *block-wise*: at each block boundary the coinciding OMD solves are
  batched through :func:`tsallis_inf_probabilities_batch`, and the opened
  block's full span of slot losses is then computed and folded in one
  :meth:`~OnlineModelSelection.observe_block` call — no per-slot
  ``select``/``observe`` round-trips at all.  Mixed or subclassed fleets
  fall back to a per-slot loop over the policies' public interface.
* **Phase B (trading)** replays the system-level sequence: selection does
  not depend on trading, so slot emissions for the whole horizon come from
  one :meth:`EnergyModel.slot_emissions_kg_batch` call, after which a lean
  per-slot loop feeds the (stateful, order-dependent) trading kernel.

Why digests are preserved (the full argument is in DESIGN.md):

* **RNG streams** — arrivals, pool draws, block sampling, and trading each
  live on their own named stream.  Pre-drawing a whole horizon of Poisson
  counts or pool indices in one vectorized call consumes a stream exactly
  as the per-slot scalar calls do (NumPy ``Generator`` methods draw
  elementwise, in order); reordering *across* streams is free because the
  streams are independent.
* **Reductions** — each per-slot loss mean stays a pairwise reduction over
  the identical contiguous values (a contiguous slice of a block-level
  gather reduces exactly like the per-slot gather); cross-edge accumulation
  is performed edge-by-edge in ascending edge order, reproducing the scalar
  loop's addition sequence per slot.
* **Block folding** — an edge's estimator is only *read* when that edge
  opens its next block, which happens strictly after the previous block's
  last slot; folding a block's losses at open time is therefore
  unobservable, and ``observe_block`` accumulates them in the same
  left-to-right Python-float order as per-slot ``observe`` calls.
* **Energy arithmetic** — :meth:`EnergyModel.slot_emissions_kg_batch`
  preserves the scalar method's operation order element by element.
* **Tsallis solves** — block openings that coincide at a slot across edges
  are solved by :func:`~repro.core.tsallis.tsallis_inf_probabilities_batch`,
  whose rows follow the scalar safeguarded-Newton trajectory bitwise.
* **Live inference** — forward passes stay per edge-slot on the slot's own
  index draw (exactly the kernel's call), so batching elsewhere never
  changes a BLAS reduction shape.

The fast path declines runs that need the per-slot machinery it strips
(tracing, fault injection, delayed labels) — those fall back to the
retained scalar loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.model_selection import OnlineModelSelection
from repro.core.tsallis import (
    tsallis_inf_probabilities,
    tsallis_inf_probabilities_batch,
)
from repro.nn.losses import squared_label_loss
from repro.sim.kernel import draw_pool_indices
from repro.sim.results import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.sim.simulator import Simulator

__all__ = ["can_vectorize", "run_vectorized"]


def can_vectorize(sim: "Simulator") -> bool:
    """Whether ``sim`` qualifies for the vectorized fast path.

    Tracing, fault injection, and delayed label feedback all hook into the
    per-slot kernel body the fast path elides, so such runs use the scalar
    reference loop instead (bit-identical either way).  Live inference *is*
    supported: forward passes stay per edge-slot, exactly as the kernel
    issues them.
    """
    return (
        not sim.tracer.enabled
        and sim.faults.is_empty
        and sim.label_delay == 0
    )


def _block_open_slots(policies: list) -> dict[int, list[tuple[int, OnlineModelSelection, int]]]:
    """Map slot -> [(edge, policy, block)] for plain Algorithm-1 policies.

    Block boundaries are fixed by the Theorem-1 schedule, so the slots at
    which each edge must open a block are known up front; edges whose
    boundaries coincide at a slot get their OMD solves batched.  Only exact
    :class:`OnlineModelSelection` instances participate — subclasses may
    override the opening logic and fall back to their own ``select``.
    """
    groups: dict[int, list[tuple[int, OnlineModelSelection, int]]] = {}
    for i, policy in enumerate(policies):
        if type(policy) is not OnlineModelSelection:
            continue
        start = 0
        for block, length in enumerate(policy.schedule.lengths):
            groups.setdefault(start, []).append((i, policy, block))
            start += int(length)
    return groups


def _open_blocks(
    t: int, group: list[tuple[int, OnlineModelSelection, int]]
) -> list[int]:
    """Open every block due at slot ``t``, batching coinciding solves.

    A single opening uses the scalar solver (exactly what ``select`` would
    have done); two or more use the batched solver, whose rows are bitwise
    identical to the scalar trajectories.  Sampling the block model happens
    inside each policy, on its own ``selection-<edge>`` stream, in edge
    order — the same per-stream draw order as the scalar loop.  Both
    solvers already ran the simplex postcondition, so the openings skip the
    re-check.  Returns the sampled models, aligned with ``group``.
    """
    if len(group) == 1:
        _, policy, block = group[0]
        model = policy.open_block_with(
            block,
            t,
            tsallis_inf_probabilities(
                policy.cumulative_estimates(), policy.block_eta(block)
            ),
            validated=True,
        )
        return [model]
    stacked = np.stack([p.cumulative_estimates() for _, p, _ in group])
    etas = np.array([p.block_eta(b) for _, p, b in group])
    probabilities = tsallis_inf_probabilities_batch(stacked, etas)
    return [
        policy.open_block_with(block, t, row, validated=True)
        for row, (_, policy, block) in zip(probabilities, group)
    ]


def run_vectorized(sim: "Simulator") -> SimulationResult:
    """Execute ``sim`` on the fast path; bit-identical to the scalar loop."""
    scenario = sim.scenario
    cfg = scenario.config
    horizon, num_edges = scenario.horizon, scenario.num_edges

    arrival_processes, edge_kernels, trading_kernel = sim.build_kernels()
    policies = [kernel.policy for kernel in edge_kernels]

    profiles = scenario.profiles
    loss_tables = [profile.loss_per_sample for profile in profiles]
    correct_tables = [profile.correct_per_sample for profile in profiles]
    expected_losses = np.array([float(p.expected_loss) for p in profiles])
    latencies = scenario.latencies
    latency_rows = [[float(v) for v in latencies[i]] for i in range(num_edges)]
    switch_costs = [kernel.switch_cost for kernel in edge_kernels]

    live = sim.live_inference
    losses_for: Callable[[int, np.ndarray], np.ndarray]
    if live:
        for profile in profiles:
            if profile.network is None:
                raise ValueError(
                    f"profile {profile.name!r} has no network for live inference"
                )
        if scenario.x_pool is None or scenario.y_pool is None:
            raise ValueError("scenario carries no data pool for live inference")
        x_pool, y_pool = scenario.x_pool, scenario.y_pool
        networks = [profile.network for profile in profiles]

        def losses_for(model: int, idx: np.ndarray) -> np.ndarray:
            # One forward per edge-slot on the slot's own draw — the exact
            # call the kernel makes, so BLAS sees identical batch shapes.
            proba = networks[model].predict_proba(x_pool[idx])
            return squared_label_loss(proba, y_pool[idx])

    else:

        def losses_for(model: int, idx: np.ndarray) -> np.ndarray:
            return loss_tables[model][idx]

    energy = scenario.energy
    transfer_table = energy.transfer_table_kwh()
    edge_range = np.arange(num_edges)

    # Pre-draw every stream for the whole horizon.  Each edge's arrival and
    # data streams are consumed in slot order within one vectorized call —
    # stream-identical to the scalar loop's per-slot draws.
    counts_mat = np.stack(
        [proc.sample_slots(horizon) for proc in arrival_processes]
    )
    pool_size = edge_kernels[0].pool_size
    class_indices = edge_kernels[0].class_indices
    offsets: list[list[int]] = []
    flat_indices: list[np.ndarray | None] = []
    slot_indices: list[list[np.ndarray] | None] = []
    for i in range(num_edges):
        counts = counts_mat[i]
        if class_indices is None:
            bounds = np.concatenate(([0], np.cumsum(counts)))
            offsets.append([int(v) for v in bounds])
            flat_indices.append(
                edge_kernels[i].data_rng.integers(0, pool_size, size=int(bounds[-1]))
            )
            slot_indices.append(None)
        else:
            # Two-stage class-mix draws interleave choice/integers calls per
            # slot; keep them per-slot (still in stream order per edge).
            offsets.append([])
            flat_indices.append(None)
            slot_indices.append(
                [
                    draw_pool_indices(
                        scenario, i, int(counts[t]), edge_kernels[i].data_rng,
                        pool_size, class_indices,
                    )
                    for t in range(horizon)
                ]
            )

    open_groups = _block_open_slots(policies)
    blockwise = all(type(policy) is OnlineModelSelection for policy in policies)

    selections = np.zeros((horizon, num_edges), dtype=int)
    loss_mat = np.empty((num_edges, horizon))
    correct_mat = np.empty((num_edges, horizon))
    loss_rows = [loss_mat[i] for i in range(num_edges)]
    correct_rows = [correct_mat[i] for i in range(num_edges)]

    # ``np.add.reduce`` is the kernel inside ``ndarray.sum``/``mean`` (same
    # pairwise routine, so bit-identical) minus several layers of Python
    # wrapper — worth it at ~10k reductions per run.
    reduce_add = np.add.reduce

    # Phase A — selection trajectories (independent of trading).
    if blockwise:
        # Whole blocks at a time: open at the boundary, then compute and
        # fold the block's entire slot-loss span in one observe_block call.
        for t in sorted(open_groups):
            group = open_groups[t]
            models = _open_blocks(t, group)
            for model, (i, policy, block) in zip(models, group):
                end = t + int(policy.schedule.lengths[block])
                latency = latency_rows[i][model]
                row_loss = loss_rows[i]
                row_correct = correct_rows[i]
                feedback: list[float] = []
                flat = flat_indices[i]
                if flat is not None and not live:
                    # One gather for the block; per-slot loss reductions run
                    # on contiguous slices of it (bitwise the same as
                    # per-slot gathers of the identical values).
                    bounds = offsets[i]
                    base = bounds[t]
                    big = flat[base : bounds[end]]
                    seg_losses = loss_tables[model][big]
                    seg_correct = correct_tables[model][big]
                    rel = np.asarray(bounds[t:end]) - base
                    # Correct counts are sums of 0/1 indicators — every
                    # partial sum is an exactly-representable integer, so the
                    # summation order cannot change the result and reduceat
                    # (not otherwise bit-stable) is safe here.
                    row_correct[t:end] = np.add.reduceat(seg_correct, rel)
                    for s in range(t, end):
                        a = bounds[s] - base
                        b = bounds[s + 1] - base
                        seg = seg_losses[a:b]
                        slot_loss = float(reduce_add(seg) / seg.size)
                        row_loss[s] = slot_loss
                        feedback.append(slot_loss + latency)
                else:
                    for s in range(t, end):
                        if flat is not None:
                            bounds = offsets[i]
                            idx = flat[bounds[s] : bounds[s + 1]]
                        else:
                            idx = slot_indices[i][s]
                        losses = losses_for(model, idx)
                        slot_loss = float(reduce_add(losses) / losses.size)
                        row_loss[s] = slot_loss
                        row_correct[s] = reduce_add(correct_tables[model][idx])
                        feedback.append(slot_loss + latency)
                policy.observe_block(block, feedback)
                selections[t:end, i] = model
    else:
        # Mixed fleet: drive the policies' public per-slot interface (block
        # openings of any plain Algorithm-1 members still batch).
        select_fns = [policy.select for policy in policies]
        observe_fns = [policy.observe for policy in policies]
        for t in range(horizon):
            group = open_groups.get(t)
            if group is not None:
                _open_blocks(t, group)
            for i in range(num_edges):
                model = select_fns[i](t)
                flat = flat_indices[i]
                if flat is not None:
                    bounds = offsets[i]
                    idx = flat[bounds[t] : bounds[t + 1]]
                else:
                    idx = slot_indices[i][t]
                losses = losses_for(model, idx)
                slot_loss = float(reduce_add(losses) / losses.size)
                observe_fns[i](t, model, slot_loss + latency_rows[i][model])
                selections[t, i] = model
                loss_rows[i][t] = slot_loss
                correct_rows[i][t] = reduce_add(correct_tables[model][idx])

    # Phase B — system-level emissions and trading.  Selections are fully
    # known, so the whole horizon's per-edge emissions come from one batch
    # call; the trading kernel itself is stateful and order-dependent, so a
    # lean per-slot loop feeds it in slot order.
    previous = np.vstack(
        [np.full((1, num_edges), -1, dtype=selections.dtype), selections[:-1]]
    )
    switches = selections != previous
    emissions_mat = energy.slot_emissions_kg_batch(
        selections,
        counts_mat.T,
        switches,
        transfer_table[edge_range, selections],
    )
    emissions = np.zeros(horizon)
    bought = np.zeros(horizon)
    sold = np.zeros(horizon)
    trading_cost = np.zeros(horizon)
    trading_step = trading_kernel.step
    # The scalar loop accumulates slot emissions edge by edge as Python
    # floats; replay that exact addition sequence.
    for t, row in enumerate(emissions_mat.tolist()):
        slot_emissions = 0.0
        for value in row:
            slot_emissions += value
        emissions[t] = slot_emissions
        bought[t], sold[t], trading_cost[t] = trading_step(t, slot_emissions)

    # Cross-edge per-slot accumulation, vectorized over slots but iterated
    # in ascending edge order — the same addition sequence per slot as the
    # scalar loop's ``acc[t] += outcome.<field>``.
    expected_inference = np.zeros(horizon)
    realized_loss = np.zeros(horizon)
    compute_cost = np.zeros(horizon)
    switching_cost = np.zeros(horizon)
    correct_acc = np.zeros(horizon)
    arrivals_total = np.zeros(horizon)
    for i in range(num_edges):
        chosen = selections[:, i]
        expected_inference += expected_losses[chosen]
        realized_loss += loss_mat[i]
        compute_cost += latencies[i][chosen]
        switching_cost += np.where(switches[:, i], switch_costs[i], 0.0)
        correct_acc += correct_mat[i]
        arrivals_total += counts_mat[i]
    # Arrival counts are truncated below at 1, so every slot serves work.
    accuracy = correct_acc / arrivals_total

    return SimulationResult(
        label=sim.label,
        horizon=horizon,
        num_edges=num_edges,
        carbon_cap=cfg.carbon_cap_kg,
        expected_inference_cost=expected_inference,
        realized_inference_loss=realized_loss,
        compute_cost=compute_cost,
        switching_cost=switching_cost,
        emissions=emissions,
        bought=bought,
        sold=sold,
        trading_cost=trading_cost,
        buy_prices=scenario.prices.buy.copy(),
        sell_prices=scenario.prices.sell.copy(),
        arrivals=arrivals_total,
        accuracy=accuracy,
        selections=selections,
        switches=switches,
    )
