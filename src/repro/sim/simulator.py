"""The time-slotted cloud-edge simulator (paper Fig. 2 workflow).

Per slot ``t`` the simulator executes, for every edge:

1. the selection policy picks a model (a download/switch occurs if it
   differs from the previous slot's model);
2. ``M_i^t`` samples arrive (Poisson around the workload trace) and are
   realized as indices into the held-out data pool;
3. the edge "runs" inference — per-sample losses are looked up from the
   model's memoized forward-pass table (bit-identical to a live forward
   pass; optionally recomputed live for validation) — and the average slot
   loss plus computation cost is fed back to the policy (bandit feedback);

and then, once slot emissions are known at the system level:

4. the trading policy decides allowance purchases/sales from information up
   to the current slot, the market executes them, and realized emissions are
   revealed to the policy for its dual/queue update.

Arrivals and sample draws use dedicated named RNG streams that do not depend
on the policies, so different policies face *identical* workloads and data
(common random numbers) — exactly how the paper compares combinations.
"""

from __future__ import annotations

import numpy as np

from repro.data.streams import ArrivalProcess
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.market.ledger import AllowanceLedger
from repro.market.market import CarbonMarket
from repro.nn.losses import squared_label_loss
from repro.obs.events import (
    FaultInjectedEvent,
    FeedbackLostEvent,
    ModelSwitchEvent,
    RetryEvent,
    SlotStartEvent,
    TradeRejectedEvent,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.policies.selection import SelectionPolicy
from repro.policies.trading import TradeDecision, TradingContext, TradingPolicy
from repro.sim.results import SimulationResult
from repro.sim.scenario import Scenario
from repro.utils.rng import RngFactory

__all__ = ["Simulator"]


class Simulator:
    """Runs one (selection policies, trading policy) combination.

    Everything after the three structural arguments is keyword-only; pass a
    :class:`~repro.obs.tracer.Tracer` to stream structured per-slot events
    (the default no-op tracer keeps the hot path uninstrumented in effect).
    For name-based construction see :meth:`from_names`.
    """

    def __init__(
        self,
        scenario: Scenario,
        selection_policies: list[SelectionPolicy],
        trading_policy: TradingPolicy,
        *,
        run_seed: int = 0,
        label: str = "run",
        live_inference: bool = False,
        label_delay: int = 0,
        tracer: Tracer | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        if len(selection_policies) != scenario.num_edges:
            raise ValueError(
                f"need one selection policy per edge: got {len(selection_policies)}, "
                f"expected {scenario.num_edges}"
            )
        for policy in selection_policies:
            if policy.num_models != scenario.num_models:
                raise ValueError(
                    f"policy {policy!r} expects {policy.num_models} models, "
                    f"scenario has {scenario.num_models}"
                )
        if label_delay < 0:
            raise ValueError(f"label_delay must be non-negative, got {label_delay}")
        self.scenario = scenario
        self.selection_policies = list(selection_policies)
        self.trading_policy = trading_policy
        self.label = label
        self.live_inference = live_inference
        self.label_delay = label_delay
        self.faults = faults if faults is not None else FaultPlan()
        self._rng = RngFactory(run_seed).child("simulator")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if tracer is not None:
            for i, policy in enumerate(self.selection_policies):
                policy.bind_tracer(tracer, edge=i)
            trading_policy.bind_tracer(tracer)

    @classmethod
    def from_names(
        cls,
        scenario: Scenario,
        selection: str = "Ours",
        trading: str = "Ours",
        *,
        seed: int = 0,
        label: str | None = None,
        live_inference: bool = False,
        label_delay: int = 0,
        tracer: Tracer | None = None,
        faults: FaultPlan | None = None,
    ) -> "Simulator":
        """Build a simulator from registered policy-family names.

        Names resolve through the :mod:`repro.policies` registry, so custom
        families registered with ``@register_selection`` /
        ``@register_trading`` work here too.  The RNG stream layout matches
        :func:`repro.experiments.runner.run_combo`, so a given
        ``(selection, trading, seed)`` triple is bit-identical either way.
        """
        from repro.policies import make_selection_policies, make_trading_policy

        rng_factory = RngFactory(seed).child(f"{selection}-{trading}")
        policies = make_selection_policies(selection, scenario, rng_factory)
        trader = make_trading_policy(trading, scenario, rng_factory)
        return cls(
            scenario,
            policies,
            trader,
            run_seed=seed,
            label=label if label is not None else f"{selection}-{trading}",
            live_inference=live_inference,
            label_delay=label_delay,
            tracer=tracer,
            faults=faults,
        )

    def run(self) -> SimulationResult:
        """Simulate the full horizon and return per-slot records."""
        scenario = self.scenario
        cfg = scenario.config
        horizon, num_edges = scenario.horizon, scenario.num_edges
        pool_size = scenario.profiles[0].pool_size
        effective_u = scenario.effective_switch_costs()

        arrival_processes = [
            ArrivalProcess(scenario.workload_means[i], self._rng.get(f"arrivals-{i}"))
            for i in range(num_edges)
        ]
        data_rngs = [self._rng.get(f"data-{i}") for i in range(num_edges)]
        class_indices = self._class_index_map()

        tracer = self.tracer
        tracing = tracer.enabled
        market = CarbonMarket(scenario.prices, tracer=tracer)
        ledger = AllowanceLedger(cfg.carbon_cap_kg, tracer=tracer)

        expected_inference = np.zeros(horizon)
        realized_loss = np.zeros(horizon)
        compute_cost = np.zeros(horizon)
        switching_cost = np.zeros(horizon)
        emissions = np.zeros(horizon)
        bought = np.zeros(horizon)
        sold = np.zeros(horizon)
        trading_cost = np.zeros(horizon)
        arrivals_total = np.zeros(horizon)
        accuracy = np.zeros(horizon)
        selections = np.zeros((horizon, num_edges), dtype=int)
        switches = np.zeros((horizon, num_edges), dtype=bool)

        previous_model = np.full(num_edges, -1, dtype=int)
        emissions_running_sum = 0.0
        # Delayed label feedback (paper Step 2.3): slot losses reach the
        # selection policies `label_delay` slots after the inference ran.
        pending_feedback: list[tuple[int, int, int, float]] = []

        # Fault injection: realized up-front from a dedicated RNG child, so
        # an empty plan leaves every workload/policy stream bit-identical.
        injector: FaultInjector | None = None
        if not self.faults.is_empty:
            injector = FaultInjector(
                self.faults,
                horizon=horizon,
                num_edges=num_edges,
                rng=self._rng.child("faults"),
            )
        # Download-retry state: slots left before the next attempt, the
        # current (capped exponential) backoff, and consecutive failures.
        retry_wait = np.zeros(num_edges, dtype=int)
        retry_backoff = np.zeros(num_edges, dtype=int)
        retry_attempts = np.zeros(num_edges, dtype=int)
        # Trade intent deferred by market outages/rejections, reconciled at
        # the next executable slot (bounded by the per-slot trade bound).
        pending_buy = 0.0
        pending_sell = 0.0

        for t in range(horizon):
            if tracing:
                tracer.emit(SlotStartEvent(t=t, horizon=horizon))
            slot_emissions = 0.0
            slot_correct = 0.0
            slot_arrivals = 0
            for i in range(num_edges):
                policy = self.selection_policies[i]
                model = policy.select(t)

                if injector is not None and injector.edge_offline(t, i):
                    # Edge down: draw the slot's workload anyway so RNG
                    # streams stay aligned with the unfaulted run, then drop
                    # it unserved — no inference, no emissions, no feedback.
                    count = arrival_processes[i].sample(t)
                    self._draw_indices(
                        i, count, data_rngs[i], pool_size, class_indices
                    )
                    selections[t, i] = model
                    switches[t, i] = False
                    policy.observe_lost(t, model)
                    if tracing:
                        tracer.emit(
                            FaultInjectedEvent(t=t, kind="edge_outage", edge=i)
                        )
                    continue

                # Resolve which model actually serves this slot: a switch
                # requires a download, which fault plans can fail — the edge
                # then keeps its hosted model and retries under capped
                # exponential backoff.  Initial provisioning never fails.
                hosted = int(previous_model[i])
                serve = model
                if injector is not None and hosted >= 0 and model != hosted:
                    if retry_wait[i] > 0:
                        retry_wait[i] -= 1
                        serve = hosted
                    elif injector.download_failed(t, i):
                        retry_attempts[i] += 1
                        cap = injector.backoff_cap(t, i)
                        retry_backoff[i] = min(max(2 * retry_backoff[i], 1), cap)
                        retry_wait[i] = retry_backoff[i]
                        serve = hosted
                        if tracing:
                            tracer.emit(
                                FaultInjectedEvent(
                                    t=t, kind="download_failure", edge=i
                                )
                            )
                            tracer.emit(
                                RetryEvent(
                                    t=t,
                                    edge=i,
                                    hosted_model=hosted,
                                    target_model=int(model),
                                    attempt=int(retry_attempts[i]),
                                    backoff_slots=int(retry_backoff[i]),
                                )
                            )
                if injector is not None and serve == model:
                    retry_wait[i] = 0
                    retry_backoff[i] = 0
                    retry_attempts[i] = 0

                switched = serve != previous_model[i]
                if switched and tracing:
                    tracer.emit(
                        ModelSwitchEvent(
                            t=t,
                            edge=i,
                            previous_model=int(previous_model[i]),
                            model=int(serve),
                            switch_cost=float(effective_u[i]),
                        )
                    )
                previous_model[i] = serve
                selections[t, i] = serve
                switches[t, i] = switched

                count = arrival_processes[i].sample(t)
                idx = self._draw_indices(
                    i, count, data_rngs[i], pool_size, class_indices
                )
                profile = scenario.profiles[serve]
                losses = self._sample_losses(profile, idx)
                slot_loss = float(losses.mean())
                latency = float(scenario.latencies[i, serve])
                if serve != model:
                    # The chosen model never ran, so its loss is
                    # unobservable this slot (bandit feedback).
                    policy.observe_lost(t, model)
                elif injector is not None and injector.feedback_lost(t, i):
                    policy.observe_lost(t, model)
                    if tracing:
                        tracer.emit(
                            FeedbackLostEvent(t=t, edge=i, model=int(model))
                        )
                elif self.label_delay == 0:
                    policy.observe(t, model, slot_loss + latency)
                else:
                    pending_feedback.append((t, i, model, slot_loss + latency))

                expected_inference[t] += profile.expected_loss
                realized_loss[t] += slot_loss
                compute_cost[t] += latency
                if switched:
                    switching_cost[t] += float(effective_u[i])
                slot_emissions += scenario.energy.slot_emissions_kg(
                    i, serve, count, switched
                )
                slot_correct += float(profile.correct_per_sample[idx].sum())
                slot_arrivals += count

            emissions[t] = slot_emissions
            arrivals_total[t] = slot_arrivals
            accuracy[t] = slot_correct / slot_arrivals if slot_arrivals else np.nan

            context = self._trading_context(
                t, market, ledger, emissions, emissions_running_sum
            )
            decision = self.trading_policy.decide(context)
            decision = TradeDecision(
                buy=min(max(decision.buy, 0.0), scenario.trade_bound),
                sell=min(max(decision.sell, 0.0), scenario.trade_bound),
            )
            if injector is not None and injector.trade_blocked(t):
                # Market unreachable or order bounced: nothing executes, the
                # ledger records realized (zero) volumes, and the intent
                # carries over — bounded by the per-slot trade bound, so
                # long outages shed excess rather than accumulate it.  The
                # dual update sees only the realized trade.
                pending_buy = min(
                    pending_buy + decision.buy, scenario.trade_bound
                )
                pending_sell = min(
                    pending_sell + decision.sell, scenario.trade_bound
                )
                ledger.record_rejection(decision.buy, decision.sell)
                ledger.record(slot_emissions, 0.0, 0.0)
                self.trading_policy.observe(
                    context, TradeDecision(buy=0.0, sell=0.0), slot_emissions
                )
                if tracing:
                    tracer.emit(
                        TradeRejectedEvent(
                            t=t,
                            buy=decision.buy,
                            sell=decision.sell,
                            pending_buy=pending_buy,
                            pending_sell=pending_sell,
                        )
                    )
            else:
                if pending_buy > 0.0 or pending_sell > 0.0:
                    executed = TradeDecision(
                        buy=min(
                            decision.buy + pending_buy, scenario.trade_bound
                        ),
                        sell=min(
                            decision.sell + pending_sell, scenario.trade_bound
                        ),
                    )
                    pending_buy = 0.0
                    pending_sell = 0.0
                else:
                    executed = decision
                trade = market.execute(t, executed.buy, executed.sell)
                ledger.record(slot_emissions, executed.buy, executed.sell)
                self.trading_policy.observe(context, executed, slot_emissions)

                bought[t] = trade.bought
                sold[t] = trade.sold
                trading_cost[t] = trade.cost
            emissions_running_sum += slot_emissions

            if self.label_delay > 0:
                self._deliver_feedback(pending_feedback, due_slot=t - self.label_delay)

        if self.label_delay > 0:
            # Labels still in flight at the end of the horizon arrive after
            # it; deliver them so every policy's accounting completes.
            self._deliver_feedback(pending_feedback, due_slot=horizon)

        return SimulationResult(
            label=self.label,
            horizon=horizon,
            num_edges=num_edges,
            carbon_cap=cfg.carbon_cap_kg,
            expected_inference_cost=expected_inference,
            realized_inference_loss=realized_loss,
            compute_cost=compute_cost,
            switching_cost=switching_cost,
            emissions=emissions,
            bought=bought,
            sold=sold,
            trading_cost=trading_cost,
            buy_prices=scenario.prices.buy.copy(),
            sell_prices=scenario.prices.sell.copy(),
            arrivals=arrivals_total,
            accuracy=accuracy,
            selections=selections,
            switches=switches,
        )

    def _class_index_map(self) -> list[np.ndarray] | None:
        """Pool indices per class, when per-edge class mixes are in force."""
        weights = self.scenario.edge_class_weights
        if weights is None:
            return None
        labels = self.scenario.y_pool
        assert labels is not None  # enforced by Scenario validation
        return [np.nonzero(labels == k)[0] for k in range(weights.shape[1])]

    def _draw_indices(
        self,
        edge: int,
        count: int,
        rng: np.random.Generator,
        pool_size: int,
        class_indices: list[np.ndarray] | None,
    ) -> np.ndarray:
        """IID pool indices for one edge-slot.

        Uniform over the pool (the paper's single distribution D), or a
        two-stage draw — class by the edge's mix, then a uniform member of
        that class — under per-edge heterogeneity.
        """
        if class_indices is None:
            return rng.integers(0, pool_size, size=count)
        weights = self.scenario.edge_class_weights[edge]
        classes = rng.choice(weights.size, size=count, p=weights)
        idx = np.empty(count, dtype=int)
        for k in np.unique(classes):
            members = class_indices[k]
            if members.size == 0:
                raise ValueError(f"class {k} has no pool members to sample")
            mask = classes == k
            idx[mask] = members[rng.integers(0, members.size, size=int(mask.sum()))]
        return idx

    def _deliver_feedback(
        self, pending: list[tuple[int, int, int, float]], due_slot: int
    ) -> None:
        """Deliver all queued slot losses whose slot is <= ``due_slot``."""
        while pending and pending[0][0] <= due_slot:
            slot, edge, model, loss = pending.pop(0)
            self.selection_policies[edge].observe(slot, model, loss)

    def _sample_losses(self, profile, idx: np.ndarray) -> np.ndarray:
        """Per-sample losses for the drawn pool indices.

        The memoized table lookup is exact; ``live_inference=True``
        recomputes the forward pass on the drawn samples for validation
        (requires the scenario to carry the shared data pool).
        """
        if self.live_inference:
            if profile.network is None:
                raise ValueError(
                    f"profile {profile.name!r} has no network for live inference"
                )
            if self.scenario.x_pool is None or self.scenario.y_pool is None:
                raise ValueError("scenario carries no data pool for live inference")
            proba = profile.network.predict_proba(self.scenario.x_pool[idx])
            return squared_label_loss(proba, self.scenario.y_pool[idx])
        return profile.loss_per_sample[idx]

    def _trading_context(
        self,
        t: int,
        market: CarbonMarket,
        ledger: AllowanceLedger,
        emissions: np.ndarray,
        emissions_running_sum: float,
    ) -> TradingContext:
        scenario = self.scenario
        snapshot = ledger.snapshot()
        prev_buy = market.buy_price(t - 1) if t > 0 else market.buy_price(0)
        prev_sell = market.sell_price(t - 1) if t > 0 else market.sell_price(0)
        prev_emissions = float(emissions[t - 1]) if t > 0 else 0.0
        mean_emissions = (
            emissions_running_sum / t if t > 0 else scenario.estimated_slot_emissions()
        )
        return TradingContext(
            t=t,
            horizon=scenario.horizon,
            cap=scenario.config.carbon_cap_kg,
            buy_price=market.buy_price(t),
            sell_price=market.sell_price(t),
            prev_buy_price=prev_buy,
            prev_sell_price=prev_sell,
            prev_emissions=prev_emissions,
            cumulative_emissions=snapshot.cumulative_emissions,
            holdings=snapshot.holdings,
            mean_slot_emissions=mean_emissions,
            trade_bound=scenario.trade_bound,
        )
