"""The time-slotted cloud-edge simulator (paper Fig. 2 workflow).

Per slot ``t`` the simulator executes, for every edge:

1. the selection policy picks a model (a download/switch occurs if it
   differs from the previous slot's model);
2. ``M_i^t`` samples arrive (Poisson around the workload trace) and are
   realized as indices into the held-out data pool;
3. the edge "runs" inference — per-sample losses are looked up from the
   model's memoized forward-pass table (bit-identical to a live forward
   pass; optionally recomputed live for validation) — and the average slot
   loss plus computation cost is fed back to the policy (bandit feedback);

and then, once slot emissions are known at the system level:

4. the trading policy decides allowance purchases/sales from information up
   to the current slot, the market executes them, and realized emissions are
   revealed to the policy for its dual/queue update.

Arrivals and sample draws use dedicated named RNG streams that do not depend
on the policies, so different policies face *identical* workloads and data
(common random numbers) — exactly how the paper compares combinations.

The per-edge and trading step bodies live in :mod:`repro.sim.kernel` as
stateful slot kernels shared with the :mod:`repro.serve` runtime; the
simulator is the lockstep driver of those kernels.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.data.streams import ArrivalProcess
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.market.ledger import AllowanceLedger
from repro.market.market import CarbonMarket
from repro.obs.events import SlotStartEvent
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.policies.selection import SelectionPolicy
from repro.policies.trading import TradingPolicy
from repro.sim.kernel import EdgeSlotKernel, TradingSlotKernel, class_index_map
from repro.sim.results import SimulationResult
from repro.sim.scenario import Scenario
from repro.utils.rng import RngFactory

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.spec import RunSpec

__all__ = ["Simulator"]


class Simulator:
    """Runs one (selection policies, trading policy) combination.

    Everything after the three structural arguments is keyword-only; pass a
    :class:`~repro.obs.tracer.Tracer` to stream structured per-slot events
    (the default no-op tracer keeps the hot path uninstrumented in effect).
    For name-based construction see :meth:`from_names`.
    """

    def __init__(
        self,
        scenario: Scenario,
        selection_policies: list[SelectionPolicy],
        trading_policy: TradingPolicy,
        *,
        run_seed: int = 0,
        label: str = "run",
        live_inference: bool = False,
        label_delay: int = 0,
        tracer: Tracer | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        if len(selection_policies) != scenario.num_edges:
            raise ValueError(
                f"need one selection policy per edge: got {len(selection_policies)}, "
                f"expected {scenario.num_edges}"
            )
        for policy in selection_policies:
            if policy.num_models != scenario.num_models:
                raise ValueError(
                    f"policy {policy!r} expects {policy.num_models} models, "
                    f"scenario has {scenario.num_models}"
                )
        if label_delay < 0:
            raise ValueError(f"label_delay must be non-negative, got {label_delay}")
        self.scenario = scenario
        self.selection_policies = list(selection_policies)
        self.trading_policy = trading_policy
        self.label = label
        self.live_inference = live_inference
        self.label_delay = label_delay
        self.faults = faults if faults is not None else FaultPlan()
        self._rng = RngFactory(run_seed).child("simulator")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if tracer is not None:
            for i, policy in enumerate(self.selection_policies):
                policy.bind_tracer(tracer, edge=i)
            trading_policy.bind_tracer(tracer)

    @classmethod
    def from_spec(
        cls,
        scenario: Scenario,
        spec: "RunSpec",
        *,
        tracer: Tracer | None = None,
    ) -> "Simulator":
        """Build a simulator for ``spec`` on an already-built ``scenario``.

        This is the constructor behind every name-based entry point
        (``repro.run``, ``run_combo``, the sweep engine, the CLI).  Policy
        names resolve through the :mod:`repro.policies` registry, and the
        RNG stream layout is a pure function of
        ``(selection, trading, seed)``, so a given spec is bit-identical
        everywhere it runs.  ``scenario`` is taken pre-built so callers can
        share one across specs for common-random-number comparisons; pass
        ``spec.build_scenario()`` when no sharing is needed.  ``tracer``
        overrides the spec's ``trace_output``/``trace_edge`` options.
        """
        from repro.policies import make_selection_policies, make_trading_policy

        selection, trading = spec.selection, spec.trading
        rng_factory = RngFactory(spec.seed).child(f"{selection}-{trading}")
        policies = make_selection_policies(selection, scenario, rng_factory)
        trader = make_trading_policy(trading, scenario, rng_factory)
        if tracer is None:
            tracer = spec.make_tracer()
        return cls(
            scenario,
            policies,
            trader,
            run_seed=spec.seed,
            label=spec.resolved_label,
            live_inference=spec.live_inference,
            label_delay=spec.label_delay,
            tracer=tracer,
            faults=spec.faults if not spec.faults.is_empty else None,
        )

    @classmethod
    def from_names(
        cls,
        scenario: Scenario,
        selection: str = "Ours",
        trading: str = "Ours",
        *,
        seed: int = 0,
        label: str | None = None,
        live_inference: bool = False,
        label_delay: int = 0,
        tracer: Tracer | None = None,
        faults: FaultPlan | None = None,
    ) -> "Simulator":
        """Deprecated: build from a keyword tail instead of a :class:`RunSpec`.

        .. deprecated:: 1.2
            Use :meth:`from_spec` with a :class:`repro.spec.RunSpec`; this
            keyword tail is frozen and will eventually go away.  Behavior is
            unchanged: a given ``(selection, trading, seed)`` triple is
            bit-identical through either constructor.
        """
        warnings.warn(
            "Simulator.from_names is deprecated; build a repro.RunSpec and "
            "call Simulator.from_spec(scenario, spec) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.spec import RunSpec

        spec = RunSpec(
            selection=selection,
            trading=trading,
            seed=seed,
            label=label,
            live_inference=live_inference,
            label_delay=label_delay,
            faults=faults if faults is not None else FaultPlan(),
        )
        return cls.from_spec(scenario, spec, tracer=tracer)

    def build_kernels(
        self,
    ) -> tuple[list[ArrivalProcess], list[EdgeSlotKernel], TradingSlotKernel]:
        """Materialize the slot kernels this run drives.

        The RNG stream layout (``arrivals-i``, ``data-i``, ``faults``) and
        construction order are part of the determinism contract: the serve
        runtime calls this too, which is what makes its virtual-clock mode
        bit-identical to :meth:`run`.
        """
        scenario = self.scenario
        num_edges = scenario.num_edges
        arrival_processes = [
            ArrivalProcess(scenario.workload_means[i], self._rng.get(f"arrivals-{i}"))
            for i in range(num_edges)
        ]
        data_rngs = [self._rng.get(f"data-{i}") for i in range(num_edges)]
        class_indices = class_index_map(scenario)

        tracer = self.tracer
        market = CarbonMarket(scenario.prices, tracer=tracer)
        ledger = AllowanceLedger(scenario.config.carbon_cap_kg, tracer=tracer)

        # Fault injection: realized up-front from a dedicated RNG child, so
        # an empty plan leaves every workload/policy stream bit-identical.
        injector: FaultInjector | None = None
        if not self.faults.is_empty:
            injector = FaultInjector(
                self.faults,
                horizon=scenario.horizon,
                num_edges=num_edges,
                rng=self._rng.child("faults"),
            )

        edge_kernels = [
            EdgeSlotKernel(
                scenario,
                self.selection_policies[i],
                i,
                data_rng=data_rngs[i],
                class_indices=class_indices,
                injector=injector,
                tracer=tracer,
                label_delay=self.label_delay,
                live_inference=self.live_inference,
            )
            for i in range(num_edges)
        ]
        trading_kernel = TradingSlotKernel(
            scenario,
            self.trading_policy,
            market,
            ledger,
            injector=injector,
            tracer=tracer,
        )
        return arrival_processes, edge_kernels, trading_kernel

    def run(self, *, vectorized: bool | None = None) -> SimulationResult:
        """Simulate the full horizon and return per-slot records.

        ``vectorized=None`` (the default) picks the vectorized fast path
        whenever the run qualifies (no tracing, faults, or delayed labels)
        and the scalar reference loop otherwise — the two are bit-identical,
        locked by the golden digests.  Pass ``False`` to force the scalar
        loop (the reference for equivalence tests and benchmarks) or
        ``True`` to require the fast path (raises if the run does not
        qualify).
        """
        from repro.sim.vector import can_vectorize, run_vectorized

        if vectorized is None:
            vectorized = can_vectorize(self)
        elif vectorized and not can_vectorize(self):
            raise ValueError(
                "run cannot use the vectorized fast path: tracing, fault "
                "injection, or label delay is enabled"
            )
        if vectorized:
            return run_vectorized(self)
        return self._run_scalar()

    def _run_scalar(self) -> SimulationResult:
        """The scalar reference loop: one kernel step per edge per slot."""
        scenario = self.scenario
        cfg = scenario.config
        horizon, num_edges = scenario.horizon, scenario.num_edges

        arrival_processes, edge_kernels, trading_kernel = self.build_kernels()

        tracer = self.tracer
        tracing = tracer.enabled

        expected_inference = np.zeros(horizon)
        realized_loss = np.zeros(horizon)
        compute_cost = np.zeros(horizon)
        switching_cost = np.zeros(horizon)
        emissions = np.zeros(horizon)
        bought = np.zeros(horizon)
        sold = np.zeros(horizon)
        trading_cost = np.zeros(horizon)
        arrivals_total = np.zeros(horizon)
        accuracy = np.zeros(horizon)
        selections = np.zeros((horizon, num_edges), dtype=int)
        switches = np.zeros((horizon, num_edges), dtype=bool)

        for t in range(horizon):
            if tracing:
                tracer.emit(SlotStartEvent(t=t, horizon=horizon))
            slot_emissions = 0.0
            slot_correct = 0.0
            slot_arrivals = 0
            for i in range(num_edges):
                count = arrival_processes[i].sample(t)
                outcome = edge_kernels[i].step(t, count)
                selections[t, i] = outcome.model
                switches[t, i] = outcome.switched
                if outcome.offline:
                    continue
                expected_inference[t] += outcome.expected_loss
                realized_loss[t] += outcome.slot_loss
                compute_cost[t] += outcome.latency
                if outcome.switched:
                    switching_cost[t] += outcome.switch_cost
                slot_emissions += outcome.emissions_kg
                slot_correct += outcome.correct
                slot_arrivals += outcome.served

            emissions[t] = slot_emissions
            arrivals_total[t] = slot_arrivals
            accuracy[t] = slot_correct / slot_arrivals if slot_arrivals else np.nan

            bought[t], sold[t], trading_cost[t] = trading_kernel.step(
                t, slot_emissions
            )

            if self.label_delay > 0:
                for kernel in edge_kernels:
                    kernel.deliver_due(t - self.label_delay)

        if self.label_delay > 0:
            # Labels still in flight at the end of the horizon arrive after
            # it; deliver them so every policy's accounting completes.
            for kernel in edge_kernels:
                kernel.deliver_due(horizon)

        return SimulationResult(
            label=self.label,
            horizon=horizon,
            num_edges=num_edges,
            carbon_cap=cfg.carbon_cap_kg,
            expected_inference_cost=expected_inference,
            realized_inference_loss=realized_loss,
            compute_cost=compute_cost,
            switching_cost=switching_cost,
            emissions=emissions,
            bought=bought,
            sold=sold,
            trading_cost=trading_cost,
            buy_prices=scenario.prices.buy.copy(),
            sell_prices=scenario.prices.sell.copy(),
            arrivals=arrivals_total,
            accuracy=accuracy,
            selections=selections,
            switches=switches,
        )
