"""Scenario configuration and cost weights.

The paper's objective (1) adds four heterogeneous terms: expected inference
loss (dimensionless squared loss), computation cost (seconds), model
switching cost (seconds), and allowance trading expense (currency).  Like
the paper — whose Fig. 5 explicitly sweeps "the weight associated to
switching cost" — we combine them with explicit weights.  The defaults
calibrate the terms to comparable magnitude on the default scenario so that
every experiment exercises every term (see DESIGN.md section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["CostWeights", "ScenarioConfig"]

DATASETS = ("mnist", "cifar10", "synthetic")


@dataclass(frozen=True)
class CostWeights:
    """Relative weights of the cost components in the objective (1).

    ``inference`` and ``compute`` weight the expected-loss and latency terms;
    ``switching`` weights the download-delay term (the paper's Fig. 5 sweep);
    ``trading`` converts allowance expense (cents) into cost units.
    """

    inference: float = 1.0
    compute: float = 1.0
    switching: float = 1.0
    trading: float = 0.01

    def __post_init__(self) -> None:
        check_nonnegative(self.inference, "inference")
        check_nonnegative(self.compute, "compute")
        check_nonnegative(self.switching, "switching")
        check_nonnegative(self.trading, "trading")


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to build a reproducible scenario.

    Defaults follow the paper's Section V-A settings: 10 edges, a two-day
    horizon of 160 fifteen-minute slots, six models, an initial cap of 500,
    emission rate 500 g/kWh, and EU-permit-range allowance prices.
    """

    dataset: str = "mnist"
    num_edges: int = 10
    horizon: int = 160
    num_models: int = 6
    carbon_cap_kg: float = 500.0
    rho_kg_per_kwh: float = 0.5
    requests_per_arrival: float = 2e6
    workload_base_mean: float = 60.0
    trade_bound_factor: float = 4.0
    switching_weight: float = 1.0
    weights: CostWeights = field(default_factory=CostWeights)
    seed: int = 0
    zoo_seed: int = 1234
    n_train: int = 2000
    n_test: int = 4000
    image_size: int = 8

    def __post_init__(self) -> None:
        if self.dataset not in DATASETS:
            raise ValueError(f"dataset must be one of {DATASETS}, got {self.dataset!r}")
        check_positive(self.num_edges, "num_edges")
        check_positive(self.horizon, "horizon")
        check_positive(self.num_models, "num_models")
        check_nonnegative(self.carbon_cap_kg, "carbon_cap_kg")
        check_nonnegative(self.rho_kg_per_kwh, "rho_kg_per_kwh")
        check_positive(self.requests_per_arrival, "requests_per_arrival")
        check_positive(self.workload_base_mean, "workload_base_mean")
        check_positive(self.trade_bound_factor, "trade_bound_factor")
        check_nonnegative(self.switching_weight, "switching_weight")
        check_positive(self.n_train, "n_train")
        check_positive(self.n_test, "n_test")
        check_positive(self.image_size, "image_size")

    def with_overrides(self, **kwargs) -> "ScenarioConfig":
        """Copy with some fields replaced (sweep helper)."""
        return replace(self, **kwargs)
