"""Saving and loading simulation results.

Two formats:

* JSON — human-inspectable, arrays as lists (``save_result_json``).
* NPZ — compact binary via ``numpy.savez_compressed`` (``save_result_npz``).

Both round-trip every field of :class:`SimulationResult` exactly: arrays are
listified with ``tolist()`` and Python's shortest-round-trip float repr, so
JSON text reconstructs bit-identical float64 values.  That exactness is what
:func:`canonical_result_json` / :func:`result_digest` build on — a canonical
byte form (sorted keys, no whitespace) whose SHA-256 is a stable fingerprint
of a run, used by the golden-digest tests and the sweep-result cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

import numpy as np

from repro.sim.results import SimulationResult

__all__ = [
    "FORMAT_VERSION",
    "canonical_result_json",
    "result_digest",
    "result_to_dict",
    "result_from_dict",
    "save_result_json",
    "load_result_json",
    "save_result_npz",
    "load_result_npz",
]

_SCALAR_FIELDS = ("label", "horizon", "num_edges", "carbon_cap")

#: Version tag of the serialized result schema.  Bump when
#: :class:`SimulationResult` gains/loses fields or changes their meaning —
#: loaders reject other versions, and the sweep cache keys include it so
#: stale entries can never be served across schema changes.
FORMAT_VERSION = 1

# Backward-compatible alias (pre-engine private name).
_FORMAT_VERSION = FORMAT_VERSION


def result_to_dict(result: SimulationResult) -> dict:
    """Serialize a result to plain Python types (JSON-compatible)."""
    payload: dict = {"format_version": _FORMAT_VERSION}
    for field in dataclasses.fields(result):
        value = getattr(result, field.name)
        if isinstance(value, np.ndarray):
            payload[field.name] = value.tolist()
        else:
            payload[field.name] = value
    return payload


def result_from_dict(payload: dict) -> SimulationResult:
    """Reconstruct a result from :func:`result_to_dict` output."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported result format version: {version!r}")
    kwargs: dict = {}
    for field in dataclasses.fields(SimulationResult):
        if field.name not in payload:
            raise ValueError(f"missing field {field.name!r} in serialized result")
        value = payload[field.name]
        if field.name in _SCALAR_FIELDS:
            kwargs[field.name] = value
        elif field.name == "selections":
            kwargs[field.name] = np.asarray(value, dtype=int)
        elif field.name == "switches":
            kwargs[field.name] = np.asarray(value, dtype=bool)
        else:
            kwargs[field.name] = np.asarray(value, dtype=float)
    return SimulationResult(**kwargs)


def canonical_result_json(result: SimulationResult) -> str:
    """The canonical JSON text of a result: sorted keys, no whitespace.

    Two results are bit-identical (same label, same float64 arrays) iff
    their canonical JSON strings are equal, which makes this the byte form
    that :func:`result_digest` hashes and the sweep cache verifies.
    """
    return json.dumps(result_to_dict(result), sort_keys=True, separators=(",", ":"))


def result_digest(result: SimulationResult) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``result``."""
    return hashlib.sha256(canonical_result_json(result).encode("utf-8")).hexdigest()


def save_result_json(result: SimulationResult, path: str | Path) -> Path:
    """Write the result as JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(result_to_dict(result)))
    return path


def load_result_json(path: str | Path) -> SimulationResult:
    """Read a result saved by :func:`save_result_json`."""
    return result_from_dict(json.loads(Path(path).read_text()))


def save_result_npz(result: SimulationResult, path: str | Path) -> Path:
    """Write the result as a compressed NPZ; returns the path written."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    meta: dict = {"format_version": _FORMAT_VERSION}
    for field in dataclasses.fields(result):
        value = getattr(result, field.name)
        if isinstance(value, np.ndarray):
            arrays[field.name] = value
        else:
            meta[field.name] = value
    arrays["_meta"] = np.array(json.dumps(meta))
    np.savez_compressed(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_result_npz(path: str | Path) -> SimulationResult:
    """Read a result saved by :func:`save_result_npz`."""
    with np.load(Path(path), allow_pickle=False) as data:
        meta = json.loads(str(data["_meta"]))
        payload = dict(meta)
        for key in data.files:
            if key != "_meta":
                payload[key] = data[key]
    return result_from_dict(payload)
