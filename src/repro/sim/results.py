"""Simulation results: per-slot records and cost/fit accounting."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.config import CostWeights

__all__ = ["SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Per-slot outcome arrays of one simulation run.

    All arrays have length ``horizon`` unless noted.  Cost components are
    stored *unweighted*; :meth:`cost_series` combines them with
    :class:`CostWeights` into the paper's objective (1).
    """

    label: str
    horizon: int
    num_edges: int
    carbon_cap: float
    expected_inference_cost: np.ndarray  # sum_i E[l_{J_i^t}] per slot
    realized_inference_loss: np.ndarray  # sum_i L_{i,J}^t per slot (sample)
    compute_cost: np.ndarray  # sum_i v_{i,J} per slot
    switching_cost: np.ndarray  # sum_i y_i^t u_i per slot (unweighted u)
    emissions: np.ndarray  # total kg per slot
    bought: np.ndarray
    sold: np.ndarray
    trading_cost: np.ndarray  # z c - w r per slot, currency units
    buy_prices: np.ndarray
    sell_prices: np.ndarray
    arrivals: np.ndarray  # total arrivals per slot
    accuracy: np.ndarray  # arrival-weighted accuracy per slot
    selections: np.ndarray  # (horizon, num_edges) model indices
    switches: np.ndarray  # (horizon, num_edges) bools

    def __post_init__(self) -> None:
        t = self.horizon
        per_slot = (
            self.expected_inference_cost,
            self.realized_inference_loss,
            self.compute_cost,
            self.switching_cost,
            self.emissions,
            self.bought,
            self.sold,
            self.trading_cost,
            self.buy_prices,
            self.sell_prices,
            self.arrivals,
            self.accuracy,
        )
        for arr in per_slot:
            if arr.shape != (t,):
                raise ValueError(f"per-slot array has shape {arr.shape}, expected ({t},)")
        if self.selections.shape != (t, self.num_edges):
            raise ValueError("selections must be (horizon, num_edges)")
        if self.switches.shape != (t, self.num_edges):
            raise ValueError("switches must be (horizon, num_edges)")

    def cost_series(self, weights: CostWeights) -> np.ndarray:
        """Per-slot total cost under the paper's objective (1)."""
        return (
            weights.inference * self.expected_inference_cost
            + weights.compute * self.compute_cost
            + weights.switching * self.switching_cost
            + weights.trading * self.trading_cost
        )

    def cumulative_cost(self, weights: CostWeights) -> np.ndarray:
        """Running total cost after each slot."""
        return np.cumsum(self.cost_series(weights))

    def total_cost(self, weights: CostWeights) -> float:
        """Total cost over the horizon."""
        return float(self.cost_series(weights).sum())

    def total_switches(self) -> int:
        """Number of model downloads over all edges."""
        return int(self.switches.sum())

    def switches_per_edge(self) -> np.ndarray:
        """(num_edges,) download counts."""
        return self.switches.sum(axis=0).astype(int)

    def selection_counts(self) -> np.ndarray:
        """(num_edges, num_models-agnostic) — counts of each selected index.

        Returns an ``(num_edges, max_index + 1)`` matrix of how many slots
        each edge hosted each model.
        """
        num_models = int(self.selections.max()) + 1
        counts = np.zeros((self.num_edges, num_models), dtype=int)
        for i in range(self.num_edges):
            values, freqs = np.unique(self.selections[:, i], return_counts=True)
            counts[i, values] = freqs
        return counts

    def holdings_series(self) -> np.ndarray:
        """Allowances held after each slot: ``R + cum(bought) - cum(sold)``."""
        return self.carbon_cap + np.cumsum(self.bought) - np.cumsum(self.sold)

    def fit_series(self) -> np.ndarray:
        """Running neutrality violation ``[cum emissions - holdings]^+``.

        This is the paper's fit, evaluated at every prefix of the horizon.
        """
        return np.maximum(np.cumsum(self.emissions) - self.holdings_series(), 0.0)

    def final_fit(self) -> float:
        """Fit at the end of the horizon."""
        return float(self.fit_series()[-1])

    def net_purchase_series(self) -> np.ndarray:
        """Per-slot net allowance purchases."""
        return self.bought - self.sold

    def mean_accuracy(self) -> float:
        """Arrival-weighted mean inference accuracy over the horizon."""
        total = float(self.arrivals.sum())
        if total <= 0:
            return float("nan")
        return float(np.dot(self.accuracy, self.arrivals) / total)

    def mean_purchase_price(self) -> float:
        """Average price paid per allowance purchased.

        ``sum_t z^t c^t / sum_t z^t`` — low when purchases concentrate on
        cheap slots.  NaN if the policy never bought anything.
        """
        total_bought = float(self.bought.sum())
        if total_bought <= 1e-12:
            return float("nan")
        return float(np.dot(self.bought, self.buy_prices) / total_bought)

    def unit_purchase_cost(self) -> float:
        """Effective cost per net allowance acquired (Fig. 9 metric).

        ``(sum_t z^t c^t - w^t r^t) / sum_t (z^t - w^t)`` — what the system
        actually pays per unit of emission coverage it keeps.  Random
        buy/sell churn inflates it (buy-sell spread is lost on every wash
        trade); NaN when the policy acquires no net coverage at all.
        """
        net = float((self.bought - self.sold).sum())
        if net <= 1e-12:
            return float("nan")
        return float(self.trading_cost.sum() / net)
