"""The one-call convenience API: :func:`repro.run`.

``repro.run`` collapses the build-scenario / construct-policies / simulate
pipeline into a single call for scripts and notebooks::

    import repro

    result = repro.run(repro.ScenarioConfig(num_edges=10, horizon=160),
                       selection="Ours", trading="Ours", seed=42)

It accepts a :class:`~repro.sim.config.ScenarioConfig` (built into a
scenario), an already-built :class:`~repro.sim.scenario.Scenario` (reuse it
across calls for common-random-number comparisons), or ``None`` for the
paper's default synthetic setup.
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan
from repro.obs.tracer import Tracer
from repro.sim.config import ScenarioConfig
from repro.sim.results import SimulationResult
from repro.sim.scenario import Scenario, build_scenario
from repro.sim.simulator import Simulator

__all__ = ["run"]


def run(
    config_or_scenario: ScenarioConfig | Scenario | None = None,
    *,
    selection: str = "Ours",
    trading: str = "Ours",
    seed: int = 0,
    label: str | None = None,
    tracer: Tracer | None = None,
    faults: FaultPlan | None = None,
) -> SimulationResult:
    """Simulate one (selection, trading) combination in a single call.

    Policy names resolve through the :mod:`repro.policies` registry; the
    seed drives both the policies and the workload/data streams, so two
    calls with the same arguments are bit-identical.  Pass a
    :class:`~repro.obs.tracer.Tracer` to capture structured per-slot events,
    and a :class:`~repro.faults.plan.FaultPlan` to run under deterministic
    fault injection (the default empty plan changes nothing).
    """
    if config_or_scenario is None:
        scenario = build_scenario(ScenarioConfig(dataset="synthetic"))
    elif isinstance(config_or_scenario, Scenario):
        scenario = config_or_scenario
    elif isinstance(config_or_scenario, ScenarioConfig):
        scenario = build_scenario(config_or_scenario)
    else:
        raise TypeError(
            "expected a ScenarioConfig, a Scenario, or None, got "
            f"{type(config_or_scenario).__name__}"
        )
    return Simulator.from_names(
        scenario,
        selection=selection,
        trading=trading,
        seed=seed,
        label=label,
        tracer=tracer,
        faults=faults,
    ).run()
