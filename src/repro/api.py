"""The one-call convenience API: :func:`repro.run`.

``repro.run`` collapses the build-scenario / construct-policies / simulate
pipeline into a single call for scripts and notebooks::

    import repro

    spec = repro.RunSpec(
        scenario=repro.ScenarioConfig(num_edges=10, horizon=160),
        selection="Ours",
        trading="Ours",
        seed=42,
    )
    result = repro.run(spec)

The canonical argument is a :class:`~repro.spec.RunSpec` — the typed,
JSON-round-trippable value identifying one run.  For common-random-number
comparisons, build the scenario once and pass it alongside each spec::

    scenario = spec.build_scenario()
    ours = repro.run(spec, scenario=scenario)
    rand = repro.run(spec.with_overrides(selection="Ran"), scenario=scenario)

The pre-1.2 forms — a :class:`~repro.sim.config.ScenarioConfig`, a built
:class:`~repro.sim.scenario.Scenario`, or ``None`` as the first argument,
with the run options as a keyword tail — still work; the keyword tail emits
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

from repro.faults.plan import FaultPlan
from repro.obs.tracer import Tracer
from repro.sim.config import ScenarioConfig
from repro.sim.results import SimulationResult
from repro.sim.scenario import Scenario, build_scenario
from repro.sim.simulator import Simulator
from repro.spec import RunSpec

__all__ = ["run"]

_UNSET = object()


def run(
    spec_or_config: RunSpec | ScenarioConfig | Scenario | None = None,
    *,
    scenario: Scenario | None = None,
    tracer: Tracer | None = None,
    selection: str = _UNSET,  # type: ignore[assignment]
    trading: str = _UNSET,  # type: ignore[assignment]
    seed: int = _UNSET,  # type: ignore[assignment]
    label: str | None = _UNSET,  # type: ignore[assignment]
    faults: FaultPlan | None = _UNSET,  # type: ignore[assignment]
) -> SimulationResult:
    """Simulate one run in a single call.

    Pass a :class:`~repro.spec.RunSpec` (optionally with a pre-built
    ``scenario`` to share across specs for common-random-number
    comparisons); policy names resolve through the :mod:`repro.policies`
    registry and the seed drives policies and workload/data streams alike,
    so two calls with the same spec are bit-identical.  A programmatic
    :class:`~repro.obs.tracer.Tracer` overrides the spec's file-based trace
    options.

    .. deprecated:: 1.2
        Calling with the ``selection``/``trading``/``seed``/``label``/
        ``faults`` keyword tail (on a config, scenario, or nothing) still
        works but emits :class:`DeprecationWarning` — put those fields in
        the :class:`RunSpec` instead.
    """
    legacy = {
        name: value
        for name, value in (
            ("selection", selection),
            ("trading", trading),
            ("seed", seed),
            ("label", label),
            ("faults", faults),
        )
        if value is not _UNSET
    }

    if isinstance(spec_or_config, RunSpec):
        if legacy:
            raise TypeError(
                "pass run options inside the RunSpec, not as keywords: "
                + ", ".join(sorted(legacy))
            )
        spec = spec_or_config
        built = scenario if scenario is not None else spec.build_scenario()
        return Simulator.from_spec(built, spec, tracer=tracer).run()

    if scenario is not None:
        raise TypeError(
            "the scenario keyword accompanies a RunSpec; pass the scenario "
            "positionally with the legacy keyword tail"
        )
    if legacy:
        warnings.warn(
            "the repro.run keyword tail is deprecated; build a repro.RunSpec "
            "and call repro.run(spec) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    legacy_faults = legacy.pop("faults", None)
    spec = RunSpec(
        faults=legacy_faults if legacy_faults is not None else FaultPlan(),
        **legacy,
    )

    if spec_or_config is None:
        built = build_scenario(ScenarioConfig(dataset="synthetic"))
    elif isinstance(spec_or_config, Scenario):
        built = spec_or_config
    elif isinstance(spec_or_config, ScenarioConfig):
        built = build_scenario(spec_or_config)
    else:
        raise TypeError(
            "expected a RunSpec, a ScenarioConfig, a Scenario, or None, got "
            f"{type(spec_or_config).__name__}"
        )
    return Simulator.from_spec(built, spec, tracer=tracer).run()
