"""Offline model selection and trading replay policies."""

from __future__ import annotations

import numpy as np

from repro.policies.selection import SelectionPolicy
from repro.policies.trading import TradeDecision, TradingContext, TradingPolicy
from repro.utils.validation import check_finite

__all__ = ["best_fixed_models", "FixedSelection", "NullTrading", "PrecomputedTrading"]


def best_fixed_models(expected_losses: np.ndarray, latencies: np.ndarray) -> np.ndarray:
    """Per-edge best fixed model at hindsight.

    Minimizes the posterior mean slot cost ``E[l_n] + v_{i,n}`` — the
    comparator of Theorem 1.  (The paper's prose says "minimum expectation of
    the inference loss"; including the known computation cost ``v`` matches
    the regret definition and only differs when two models' losses tie.)

    Parameters
    ----------
    expected_losses:
        (N,) posterior mean inference loss per model.
    latencies:
        (I, N) computation cost ``v_{i,n}``.

    Returns
    -------
    (I,) best model index per edge.
    """
    losses = check_finite(expected_losses, "expected_losses")
    v = check_finite(latencies, "latencies")
    if v.ndim != 2 or v.shape[1] != losses.size:
        raise ValueError("latencies must be (num_edges, num_models)")
    return np.argmin(losses[None, :] + v, axis=1)


class FixedSelection(SelectionPolicy):
    """Hosts one fixed model forever (used by Offline and in ablations)."""

    name = "Fixed"

    def __init__(self, num_models: int, model: int) -> None:
        super().__init__(num_models)
        self._check_model(model)
        self._model = model

    @property
    def model(self) -> int:
        """The fixed model index."""
        return self._model

    def select(self, t: int) -> int:
        return self._model

    def observe(self, t: int, model: int, loss: float) -> None:
        self._check_model(model)


class PrecomputedTrading(TradingPolicy):
    """Replays a precomputed per-slot (buy, sell) plan (Offline's trades)."""

    name = "Offline"

    def __init__(self, buy: np.ndarray, sell: np.ndarray) -> None:
        b = check_finite(buy, "buy")
        s = check_finite(sell, "sell")
        if b.shape != s.shape or b.ndim != 1:
            raise ValueError("buy and sell must be aligned 1-D arrays")
        if np.any(b < -1e-9) or np.any(s < -1e-9):
            raise ValueError("plans must be non-negative")
        self._buy = np.maximum(b, 0.0)
        self._sell = np.maximum(s, 0.0)

    def decide(self, context: TradingContext) -> TradeDecision:
        if context.t >= self._buy.size:
            raise IndexError(f"plan covers {self._buy.size} slots, asked for {context.t}")
        return TradeDecision(
            buy=float(self._buy[context.t]), sell=float(self._sell[context.t])
        )


class NullTrading(TradingPolicy):
    """Never trades (used for emission-recording passes and ablations)."""

    name = "Null"

    def decide(self, context: TradingContext) -> TradeDecision:
        return TradeDecision(buy=0.0, sell=0.0)
