"""Offline optimum ("Offline" in the paper's figures).

Offline knows every input in advance: it hosts the posterior-best model on
each edge for the whole horizon (one initial download, no further switches)
and solves the carbon-trading linear program exactly — the paper uses
Gurobi; we use an exact greedy-exchange solver specialised to the problem's
transportation structure, cross-checked against ``scipy.optimize.linprog``.
"""

from repro.offline.optimum import (
    FixedSelection,
    NullTrading,
    PrecomputedTrading,
    best_fixed_models,
)
from repro.offline.lp import (
    OfflineTradingSolution,
    solve_offline_trading,
    solve_offline_trading_scipy,
)

__all__ = [
    "FixedSelection",
    "NullTrading",
    "PrecomputedTrading",
    "best_fixed_models",
    "OfflineTradingSolution",
    "solve_offline_trading",
    "solve_offline_trading_scipy",
]
