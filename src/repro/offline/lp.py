"""Exact offline carbon-trading optimization.

With model placements fixed, the offline trading problem is

    min   sum_t  c_t z_t - r_t w_t
    s.t.  sum_t (z_t - w_t)  >=  sum_t e_t - R     (constraint (1c))
          0 <= z_t <= bound,  0 <= w_t <= bound.

The right-hand side may be negative: with a slack cap the optimum *sells*
the spare allowances (the paper: "sell spare allowances to the market").
Per-slot trade bounds realise the paper's bounded-feasible-set assumption
(Appendix B, assumption (2)); without them, any slot pair with
``r_s > c_t`` would admit unbounded arbitrage and the LP would be unbounded.

The structure is a transportation problem with one coupling constraint, so
greedy exchange is exactly optimal: cover a positive requirement with the
cheapest purchase units (or sell a surplus at the dearest sale slots), then
repeatedly match the cheapest remaining purchase unit with the most
expensive remaining sale unit while the pair is profitable.
``solve_offline_trading_scipy`` solves the same LP with
``scipy.optimize.linprog`` and is used to cross-check optimality in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.carbon_prices import PriceSeries
from repro.utils.validation import check_finite, check_nonnegative, check_positive

__all__ = [
    "OfflineTradingSolution",
    "solve_offline_trading",
    "solve_offline_trading_scipy",
]


@dataclass(frozen=True)
class OfflineTradingSolution:
    """Optimal per-slot buy/sell plan and its total cost."""

    buy: np.ndarray
    sell: np.ndarray
    cost: float

    def __post_init__(self) -> None:
        if self.buy.shape != self.sell.shape or self.buy.ndim != 1:
            raise ValueError("buy and sell must be aligned 1-D arrays")
        if np.any(self.buy < -1e-9) or np.any(self.sell < -1e-9):
            raise ValueError("trade quantities must be non-negative")

    @property
    def net_purchase(self) -> float:
        """Total allowances acquired net of sales."""
        return float(self.buy.sum() - self.sell.sum())


def _net_requirement(emissions: np.ndarray, cap: float) -> float:
    """``sum e - R``: positive = must buy, negative = surplus to sell."""
    return float(emissions.sum()) - cap


def solve_offline_trading(
    emissions: np.ndarray,
    prices: PriceSeries,
    cap: float,
    trade_bound: float,
) -> OfflineTradingSolution:
    """Exact greedy-exchange solution of the offline trading LP."""
    e = check_finite(emissions, "emissions")
    check_nonnegative(cap, "cap")
    check_positive(trade_bound, "trade_bound")
    if e.ndim != 1 or e.size != prices.horizon:
        raise ValueError("emissions must be 1-D and aligned with the price horizon")
    horizon = prices.horizon
    requirement = _net_requirement(e, cap)
    if requirement > horizon * trade_bound + 1e-9:
        raise ValueError(
            f"infeasible: deficit {requirement:.3f} exceeds total purchase "
            f"capacity {horizon * trade_bound:.3f}"
        )

    buy = np.zeros(horizon)
    sell = np.zeros(horizon)
    buy_order = np.argsort(prices.buy, kind="stable")  # cheapest first
    sell_order = np.argsort(-prices.sell, kind="stable")  # dearest first

    if requirement > 0:
        # Phase 1a: cover the deficit with the cheapest purchase capacity.
        remaining = requirement
        for t in buy_order:
            if remaining <= 1e-12:
                break
            take = min(trade_bound, remaining)
            buy[t] += take
            remaining -= take
    elif requirement < 0:
        # Phase 1b: sell the surplus allowances at the dearest sale slots
        # (pure revenue; selling less than the surplus is always allowed, so
        # running out of sale capacity is fine).
        remaining = -requirement
        for t in sell_order:
            if remaining <= 1e-12:
                break
            take = min(trade_bound, remaining)
            sell[t] += take
            remaining -= take

    # Phase 2: profitable arbitrage — cheapest remaining purchase unit vs
    # most expensive remaining sale unit.  Marginal purchase cost is
    # non-decreasing and marginal sale revenue non-increasing, so stopping at
    # the first unprofitable pair is optimal.
    bi = 0
    si = 0
    while bi < horizon and si < horizon:
        tb = int(buy_order[bi])
        ts = int(sell_order[si])
        buy_room = trade_bound - buy[tb]
        sell_room = trade_bound - sell[ts]
        if buy_room <= 1e-12:
            bi += 1
            continue
        if sell_room <= 1e-12:
            si += 1
            continue
        if prices.sell[ts] <= prices.buy[tb] + 1e-12:
            break  # no remaining profitable pair
        quantity = min(buy_room, sell_room)
        buy[tb] += quantity
        sell[ts] += quantity

    cost = float(np.dot(buy, prices.buy) - np.dot(sell, prices.sell))
    return OfflineTradingSolution(buy=buy, sell=sell, cost=cost)


def solve_offline_trading_scipy(
    emissions: np.ndarray,
    prices: PriceSeries,
    cap: float,
    trade_bound: float,
) -> OfflineTradingSolution:
    """Same LP solved with ``scipy.optimize.linprog`` (cross-check)."""
    from scipy.optimize import linprog

    e = check_finite(emissions, "emissions")
    horizon = prices.horizon
    if e.ndim != 1 or e.size != horizon:
        raise ValueError("emissions must be 1-D and aligned with the price horizon")
    requirement = _net_requirement(e, cap)
    # Variables: [z_0..z_{T-1}, w_0..w_{T-1}]; constraint sum(w) - sum(z) <= R - sum(e).
    c = np.concatenate([prices.buy, -prices.sell])
    a_ub = np.concatenate([-np.ones(horizon), np.ones(horizon)])[None, :]
    b_ub = np.array([-requirement])
    bounds = [(0.0, trade_bound)] * (2 * horizon)
    res = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not res.success:
        raise RuntimeError(f"offline trading LP failed: {res.message}")
    buy = res.x[:horizon]
    sell = res.x[horizon:]
    return OfflineTradingSolution(buy=buy, sell=sell, cost=float(res.fun))
