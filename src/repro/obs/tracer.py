"""The event bus: a :class:`Tracer` fans events out to sinks.

Instrumented code holds a tracer and guards event construction on
``tracer.enabled``::

    if tracer.enabled:
        tracer.emit(TradeEvent(t=t, buy=z, sell=w, ...))

The default is :data:`NULL_TRACER`, whose ``enabled`` is ``False`` — with
it the instrumentation reduces to one attribute read per site, keeping the
simulator hot path within its overhead budget (``benchmarks/
bench_obs_overhead.py`` measures this).  Tracers also hand out named
:class:`~repro.obs.metrics.Counter`/:class:`~repro.obs.metrics.Timer`
instances so ad-hoc profiling shares the same object.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from repro.obs.events import Event
from repro.obs.metrics import Counter, Timer

__all__ = ["EventSink", "NULL_TRACER", "NullTracer", "Tracer"]


class EventSink(Protocol):
    """Anything that can receive events from a tracer."""

    def write(self, event: Event) -> None:
        """Receive one event."""

    def close(self) -> None:
        """Release any resources held by the sink."""


class Tracer:
    """Dispatches structured events to sinks and owns named metrics.

    Parameters
    ----------
    sinks:
        Initial event sinks; more can be attached with :meth:`add_sink`.
    """

    #: Hot paths test this before building an event; ``NullTracer`` flips it.
    enabled: bool = True

    def __init__(self, sinks: Iterable[EventSink] | None = None) -> None:
        self._sinks: list[EventSink] = list(sinks) if sinks is not None else []
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}
        self._event_counts: dict[str, int] = {}

    def add_sink(self, sink: EventSink) -> None:
        """Attach an additional event sink."""
        self._sinks.append(sink)

    def emit(self, event: Event) -> None:
        """Dispatch one event to every sink (and tally it by type)."""
        counts = self._event_counts
        counts[event.type] = counts.get(event.type, 0) + 1
        for sink in self._sinks:
            sink.write(event)

    def counter(self, name: str) -> Counter:
        """The named counter, created on first use."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def timer(self, name: str) -> Timer:
        """The named timer, created on first use."""
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = Timer(name)
        return timer

    def event_counts(self) -> dict[str, int]:
        """Events emitted so far, per type tag (copy)."""
        return dict(self._event_counts)

    def metrics_snapshot(self) -> dict[str, dict[str, float]]:
        """Counters and timer totals in a JSON-ready mapping."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "timers": {
                name: t.total_seconds for name, t in sorted(self._timers.items())
            },
        }

    def close(self) -> None:
        """Close every sink (file sinks flush and release their handles)."""
        for sink in self._sinks:
            sink.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(sinks={len(self._sinks)})"


class NullTracer(Tracer):
    """The no-op tracer: drops every event, accepts no sinks.

    ``enabled`` is ``False``, so guarded instrumentation sites skip event
    construction entirely; an unguarded ``emit`` is still safe (and cheap).
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def add_sink(self, sink: EventSink) -> None:
        raise TypeError("NullTracer drops all events; use Tracer to collect them")

    def emit(self, event: Event) -> None:
        """Drop the event."""


#: Shared default tracer: safe to use from any number of simulators.
NULL_TRACER = NullTracer()
