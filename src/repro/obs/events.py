"""Typed structured events emitted by the instrumented simulation stack.

Each event type is a frozen dataclass recording one per-slot transition of
the paper's control loop: slot starts, Algorithm-1 block boundaries and
model switches, Algorithm-2 dual updates, allowance trades, and realized
emissions.  Events are plain data — JSON-serializable via :meth:`Event.as_dict`
and reconstructible via :func:`event_from_dict` — so a JSONL trace of a run
round-trips losslessly.

The module is dependency-free (stdlib only): producers convert numpy
scalars to builtin ``int``/``float`` before constructing events.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import ClassVar

__all__ = [
    "ArrivalEvent",
    "BlockBoundaryEvent",
    "DeadlineMissEvent",
    "DualUpdateEvent",
    "EVENT_TYPES",
    "EmissionEvent",
    "Event",
    "FaultInjectedEvent",
    "FeedbackLostEvent",
    "ModelSwitchEvent",
    "QueueShedEvent",
    "ReconfigAppliedEvent",
    "RequestAdmitEvent",
    "RequestDeferEvent",
    "RequestDropEvent",
    "RetryEvent",
    "SlotStartEvent",
    "SnapshotEvent",
    "TradeEvent",
    "TradeRejectedEvent",
    "WorkerDeathEvent",
    "WorkerRestartEvent",
    "WorkerSpawnEvent",
    "event_from_dict",
    "register_event",
]

#: Registry of event type tag -> event class, populated by ``register_event``.
EVENT_TYPES: dict[str, type["Event"]] = {}


def register_event(cls: type["Event"]) -> type["Event"]:
    """Class decorator adding an event class to :data:`EVENT_TYPES` (tag-unique)."""
    if cls.type in EVENT_TYPES:
        raise ValueError(f"duplicate event type tag {cls.type!r}")
    EVENT_TYPES[cls.type] = cls
    return cls


@dataclass(frozen=True)
class Event:
    """Base event: one structured record anchored at time slot ``t``."""

    t: int

    #: Stable wire tag written to the ``"type"`` key of the JSON form.
    type: ClassVar[str] = "event"

    def as_dict(self) -> dict[str, object]:
        """JSON-ready mapping: the fields plus the ``"type"`` tag."""
        return {"type": self.type, **asdict(self)}


@register_event
@dataclass(frozen=True)
class SlotStartEvent(Event):
    """Top of the simulator main loop: slot ``t`` of ``horizon`` begins."""

    horizon: int = 0

    type: ClassVar[str] = "slot_start"


@register_event
@dataclass(frozen=True)
class ModelSwitchEvent(Event):
    """An edge downloads a different model than it hosted last slot.

    ``previous_model`` is ``-1`` on the first slot (nothing was hosted yet);
    ``switch_cost`` is the edge's effective download delay ``u_i``.
    """

    edge: int = 0
    previous_model: int = -1
    model: int = 0
    switch_cost: float = 0.0

    type: ClassVar[str] = "model_switch"


@register_event
@dataclass(frozen=True)
class BlockBoundaryEvent(Event):
    """Algorithm 1 opens a new block: OMD resample at a block boundary.

    ``length`` is the block's slot count, ``eta`` its Tsallis-INF learning
    rate, and ``model`` the model sampled to host for the whole block.
    """

    edge: int = 0
    block: int = 0
    length: int = 0
    eta: float = 0.0
    model: int = 0

    type: ClassVar[str] = "block_boundary"


@register_event
@dataclass(frozen=True)
class TradeEvent(Event):
    """The market executed an allowance order (possibly of zero volume).

    ``cost`` is the paper's ``z^t c^t - w^t r^t`` (negative = net revenue).
    """

    buy: float = 0.0
    sell: float = 0.0
    buy_price: float = 0.0
    sell_price: float = 0.0
    cost: float = 0.0

    type: ClassVar[str] = "trade"


@register_event
@dataclass(frozen=True)
class DualUpdateEvent(Event):
    """Algorithm 2's dual ascent ran: lambda after absorbing slot ``t``.

    ``constraint`` is the realized per-slot constraint value
    ``g^t = e^t - R/T - z^t + w^t`` the ascent moved along.
    """

    dual: float = 0.0
    constraint: float = 0.0

    type: ClassVar[str] = "dual_update"


@register_event
@dataclass(frozen=True)
class EmissionEvent(Event):
    """The ledger recorded slot ``t``'s realized emissions.

    ``holdings_kg`` is ``R + sum z - sum w`` after the slot's trade;
    ``violation_kg`` is the running positive part of (emissions - holdings),
    i.e. the paper's fit measured at this prefix.
    """

    emissions_kg: float = 0.0
    cumulative_kg: float = 0.0
    holdings_kg: float = 0.0
    violation_kg: float = 0.0

    type: ClassVar[str] = "emission"


@register_event
@dataclass(frozen=True)
class FaultInjectedEvent(Event):
    """A declared fault fired at slot ``t``.

    ``kind`` is the fault spec's wire tag (``edge_outage``,
    ``download_failure``, ``market_outage``, ...); ``edge`` is ``-1`` for
    system-level faults with no edge locality.
    """

    kind: str = "fault"
    edge: int = -1

    type: ClassVar[str] = "fault_injected"


@register_event
@dataclass(frozen=True)
class FeedbackLostEvent(Event):
    """An edge's slot-loss observation was dropped in transit.

    The policy skips its estimator update for this slot (the
    importance-weighted estimator stays unbiased over observed slots).
    """

    edge: int = 0
    model: int = 0

    type: ClassVar[str] = "feedback_lost"


@register_event
@dataclass(frozen=True)
class TradeRejectedEvent(Event):
    """Slot ``t``'s trade did not execute (market outage or rejection).

    ``buy``/``sell`` are the intended volumes; ``pending_buy``/``pending_sell``
    the carried-over intent (bounded by the per-slot trade bound) that will
    reconcile at the next executable slot.
    """

    buy: float = 0.0
    sell: float = 0.0
    pending_buy: float = 0.0
    pending_sell: float = 0.0

    type: ClassVar[str] = "trade_rejected"


@register_event
@dataclass(frozen=True)
class RetryEvent(Event):
    """A failed model download backs off for retry.

    ``attempt`` counts consecutive failures for the current target model;
    ``backoff_slots`` is the wait before the next attempt (capped
    exponential); the edge keeps ``hosted_model`` meanwhile.
    """

    edge: int = 0
    hosted_model: int = 0
    target_model: int = 0
    attempt: int = 1
    backoff_slots: int = 1

    type: ClassVar[str] = "retry"


@register_event
@dataclass(frozen=True)
class ArrivalEvent(Event):
    """A stream adapter delivered slot ``t``'s workload to an edge.

    ``count`` is the number of samples offered.  Replaying a serve log
    through the trace-replay adapter feeds these counts back verbatim,
    which is what lets a recorded run be re-executed deterministically.
    """

    edge: int = 0
    count: int = 0

    type: ClassVar[str] = "arrival"


@register_event
@dataclass(frozen=True)
class QueueShedEvent(Event):
    """Backpressure dropped slot ``t``'s payload at an edge's work queue.

    The edge still advances its block schedule (the slot routes through the
    lost-feedback path), but nothing is served; ``count`` samples were shed.
    """

    edge: int = 0
    count: int = 0

    type: ClassVar[str] = "queue_shed"


@register_event
@dataclass(frozen=True)
class SnapshotEvent(Event):
    """The serve runtime persisted full controller state after slot ``t``.

    ``path`` is where the snapshot landed; a restored process resumes from
    ``t + 1``.
    """

    path: str = ""

    type: ClassVar[str] = "snapshot"


@register_event
@dataclass(frozen=True)
class WorkerSpawnEvent(Event):
    """The shard parent spawned worker ``worker`` to serve from slot ``t``.

    ``num_edges`` is the size of the shard it owns; ``generation`` counts
    incarnations of this worker index (0 = the original spawn).
    """

    worker: int = 0
    num_edges: int = 0
    generation: int = 0

    type: ClassVar[str] = "worker_spawn"


@register_event
@dataclass(frozen=True)
class WorkerDeathEvent(Event):
    """Worker ``worker`` died with slot ``t`` as the next slot to fold.

    ``policy`` is the death policy in force (``fail``/``degrade``/
    ``restart``); ``message`` carries the worker-side error when one was
    reported before the pipe closed.
    """

    worker: int = 0
    policy: str = ""
    message: str = ""

    type: ClassVar[str] = "worker_death"


@register_event
@dataclass(frozen=True)
class WorkerRestartEvent(Event):
    """The supervisor respawned worker ``worker`` after a death.

    ``t`` is the first live slot of the new incarnation; ``replay_from``
    is where its offline replay of missed slots began; ``attempt`` counts
    restarts of this worker index (1 = first restart); ``backoff_s`` is
    the pre-spawn backoff that was applied.
    """

    worker: int = 0
    replay_from: int = 0
    attempt: int = 1
    backoff_s: float = 0.0

    type: ClassVar[str] = "worker_restart"


@register_event
@dataclass(frozen=True)
class ReconfigAppliedEvent(Event):
    """A reconfiguration op was applied at the slot-``t`` barrier.

    ``op`` is the op's kind tag (``add_edge``/``remove_edge``/
    ``rebalance``); ``edge`` the affected edge (-1 for rebalance);
    ``active_edges``/``num_workers`` describe the fleet *after* the op.
    """

    op: str = ""
    edge: int = -1
    active_edges: int = 0
    num_workers: int = 0

    type: ClassVar[str] = "reconfig_applied"


@register_event
@dataclass(frozen=True)
class RequestAdmitEvent(Event):
    """Ingress admitted ``count`` requests on edge ``edge`` at slot ``t``.

    The four request-level events are *sampled*: the ingress adapter
    emits them only on slots where ``t % sample_every == 0`` and the
    count is nonzero, so trace volume stays bounded at request scale.
    """

    edge: int = 0
    count: int = 0

    type: ClassVar[str] = "request_admit"


@register_event
@dataclass(frozen=True)
class RequestDeferEvent(Event):
    """``count`` of slot ``t``'s arrivals were held past their slot.

    Covers both voluntary carbon-aware deferrals (a cheaper forecast slot
    exists within deadline) and capacity spill.  Sampled (see
    :class:`RequestAdmitEvent`).
    """

    edge: int = 0
    count: int = 0

    type: ClassVar[str] = "request_defer"


@register_event
@dataclass(frozen=True)
class RequestDropEvent(Event):
    """Admission policy dropped ``count`` requests at slot ``t``.

    Sampled (see :class:`RequestAdmitEvent`).
    """

    edge: int = 0
    count: int = 0

    type: ClassVar[str] = "request_drop"


@register_event
@dataclass(frozen=True)
class DeadlineMissEvent(Event):
    """``count`` requests released at slot ``t`` missed their deadline.

    Includes releases into shed or offline slots (nothing was served, so
    every release that slot is a miss).  Sampled (see
    :class:`RequestAdmitEvent`).
    """

    edge: int = 0
    count: int = 0

    type: ClassVar[str] = "deadline_miss"


def event_from_dict(payload: dict[str, object]) -> Event:
    """Reconstruct an event from its :meth:`Event.as_dict` form."""
    fields = dict(payload)
    tag = fields.pop("type", None)
    if not isinstance(tag, str) or tag not in EVENT_TYPES:
        raise ValueError(
            f"unknown event type {tag!r}; expected one of {sorted(EVENT_TYPES)}"
        )
    return EVENT_TYPES[tag](**fields)
