"""Structured simulation observability: events, tracer, sinks, metrics.

The subsystem makes the simulator's per-slot dynamics inspectable while a
run is in flight: the control loop emits typed events (slot starts, model
switches, Algorithm-1 block boundaries, trades, Algorithm-2 dual updates,
realized emissions) through a :class:`Tracer` into pluggable sinks, with a
no-op default whose cost on the hot path is one attribute read per site.

Typical use::

    from repro.obs import InMemorySink, Tracer

    sink = InMemorySink()
    spec = repro.RunSpec(scenario=config, selection="Ours", trading="Ours")
    result = repro.run(spec, tracer=Tracer([sink]))
    switches = sink.of_type("model_switch")

or from the command line: ``repro trace --selection Ours --trading Ours``.
Recorded JSONL traces fold back into summaries via
:func:`summarize_trace` (``repro trace --replay log.jsonl``).
"""

from repro.obs.events import (
    EVENT_TYPES,
    ArrivalEvent,
    BlockBoundaryEvent,
    DualUpdateEvent,
    EmissionEvent,
    Event,
    FaultInjectedEvent,
    FeedbackLostEvent,
    ModelSwitchEvent,
    QueueShedEvent,
    ReconfigAppliedEvent,
    RetryEvent,
    SlotStartEvent,
    SnapshotEvent,
    TradeEvent,
    TradeRejectedEvent,
    WorkerDeathEvent,
    WorkerRestartEvent,
    WorkerSpawnEvent,
    event_from_dict,
    register_event,
)
from repro.obs.metrics import Counter, Timer
from repro.obs.replay import (
    EdgeSummary,
    TraceSummary,
    merge_events,
    summarize_events,
    summarize_trace,
    summarize_traces,
)
from repro.obs.sinks import (
    AsyncQueueSink,
    BufferedJsonlSink,
    EdgeFilterSink,
    InMemorySink,
    JsonlSink,
    iter_events,
    read_events,
)
from repro.obs.tracer import NULL_TRACER, EventSink, NullTracer, Tracer

__all__ = [
    "ArrivalEvent",
    "AsyncQueueSink",
    "BlockBoundaryEvent",
    "BufferedJsonlSink",
    "Counter",
    "DualUpdateEvent",
    "EVENT_TYPES",
    "EdgeFilterSink",
    "EdgeSummary",
    "EmissionEvent",
    "Event",
    "EventSink",
    "FaultInjectedEvent",
    "FeedbackLostEvent",
    "InMemorySink",
    "JsonlSink",
    "ModelSwitchEvent",
    "NULL_TRACER",
    "NullTracer",
    "QueueShedEvent",
    "ReconfigAppliedEvent",
    "RetryEvent",
    "SlotStartEvent",
    "SnapshotEvent",
    "Timer",
    "TraceSummary",
    "TradeEvent",
    "TradeRejectedEvent",
    "Tracer",
    "WorkerDeathEvent",
    "WorkerRestartEvent",
    "WorkerSpawnEvent",
    "event_from_dict",
    "iter_events",
    "merge_events",
    "read_events",
    "register_event",
    "summarize_events",
    "summarize_trace",
    "summarize_traces",
]
