"""Lightweight counters and timers for hot-path profiling.

Both are monotonic-clock based (``time.perf_counter`` — never the wall
clock, which reprolint RPL008 bans from library code) and allocation-free
on the measurement path, so they are safe to leave permanently attached to
the simulator's inner loop.
"""

from __future__ import annotations

import time

__all__ = ["Counter", "Timer"]


class Counter:
    """A named monotonically increasing integer counter."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    @property
    def value(self) -> int:
        """Current count."""
        return self._value

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1); negative increments are rejected."""
        if amount < 0:
            raise ValueError(f"counter increment must be non-negative, got {amount}")
        self._value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, value={self._value})"


class Timer:
    """A named accumulating duration timer (monotonic clock).

    Use as a context manager around the timed region; re-entrant use is not
    supported (one region at a time per timer)::

        with tracer.timer("slot"):
            ...  # timed work

    ``total_seconds`` and ``count`` accumulate across entries, so the mean
    per-entry latency is always available.
    """

    __slots__ = ("name", "total_seconds", "count", "_started")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total_seconds = 0.0
        self.count = 0
        self._started: float | None = None

    @property
    def mean_seconds(self) -> float:
        """Average duration per completed entry (0.0 before any entry)."""
        return self.total_seconds / self.count if self.count else 0.0

    def __enter__(self) -> "Timer":
        if self._started is not None:
            raise RuntimeError(f"timer {self.name!r} is already running")
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if self._started is None:  # pragma: no cover - defensive
            raise RuntimeError(f"timer {self.name!r} was never started")
        self.total_seconds += time.perf_counter() - self._started
        self.count += 1
        self._started = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Timer({self.name!r}, total={self.total_seconds:.6f}s, "
            f"count={self.count})"
        )
