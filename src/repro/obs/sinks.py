"""Event sinks: where the tracer's structured events go.

Two built-ins cover the common cases — :class:`InMemorySink` for tests and
programmatic inspection, :class:`JsonlSink` for streaming one JSON object
per line to a file or an already-open stream (stdout included).
:class:`EdgeFilterSink` wraps any sink and forwards only the events anchored
at one edge (``repro trace --edge I`` uses it).  Anything with
``write(event)`` / ``close()`` methods can serve as a sink.
"""

from __future__ import annotations

import json
import queue
import threading
from pathlib import Path
from typing import IO, TYPE_CHECKING, Iterator

from repro.obs.events import Event, event_from_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import EventSink

__all__ = [
    "AsyncQueueSink",
    "BufferedJsonlSink",
    "EdgeFilterSink",
    "InMemorySink",
    "JsonlSink",
    "iter_events",
    "read_events",
]


def _json_default(value: object) -> object:
    """Coerce numpy scalars (anything with ``.item()``) to builtin types."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"event field of type {type(value).__name__} is not JSON-serializable")


class InMemorySink:
    """Collects events in a list; supports per-type counting."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def write(self, event: Event) -> None:
        """Append one event."""
        self.events.append(event)

    def close(self) -> None:
        """No resources to release."""

    def counts_by_type(self) -> dict[str, int]:
        """Number of collected events per type tag."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.type] = counts.get(event.type, 0) + 1
        return counts

    def of_type(self, tag: str) -> list[Event]:
        """All collected events whose type tag equals ``tag``."""
        return [event for event in self.events if event.type == tag]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)


class JsonlSink:
    """Writes each event as one JSON object per line.

    ``target`` may be a path (the sink opens and owns the file, closing it
    on :meth:`close`) or an already-open text stream such as ``sys.stdout``
    (left open — the caller owns it).
    """

    def __init__(self, target: str | Path | IO[str]) -> None:
        if isinstance(target, (str, Path)):
            self._handle: IO[str] = Path(target).open("w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self.events_written = 0

    def write(self, event: Event) -> None:
        """Serialize one event as a JSON line."""
        self._handle.write(json.dumps(event.as_dict(), default=_json_default))
        self._handle.write("\n")
        self.events_written += 1

    def close(self) -> None:
        """Flush, and close the handle if this sink opened it."""
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()


class BufferedJsonlSink(JsonlSink):
    """A :class:`JsonlSink` that batches serialized lines before writing.

    High-frequency event streams (per-slot fault events, per-sample traces)
    pay one stream ``write`` per ``buffer_size`` events instead of per
    event.  Buffered lines are flushed when the buffer fills, on
    :meth:`flush`, and on :meth:`close`; a crash between flushes loses at
    most ``buffer_size - 1`` events, which is the usual JSONL trade-off.
    """

    def __init__(
        self, target: str | Path | IO[str], *, buffer_size: int = 256
    ) -> None:
        if buffer_size < 1:
            raise ValueError(f"buffer_size must be >= 1, got {buffer_size}")
        super().__init__(target)
        self.buffer_size = buffer_size
        self.flushes = 0
        self._buffer: list[str] = []

    def write(self, event: Event) -> None:
        """Serialize one event into the buffer, flushing when it fills."""
        self._buffer.append(json.dumps(event.as_dict(), default=_json_default))
        self.events_written += 1
        if len(self._buffer) >= self.buffer_size:
            self.flush()

    def flush(self) -> None:
        """Write all buffered lines to the underlying stream."""
        if self._buffer:
            self._handle.write("\n".join(self._buffer))
            self._handle.write("\n")
            self._buffer.clear()
            self.flushes += 1

    @property
    def buffered(self) -> int:
        """Events currently held in the buffer (not yet on the stream)."""
        return len(self._buffer)

    def close(self) -> None:
        """Flush the buffer, then close as :class:`JsonlSink` does."""
        self.flush()
        super().close()


class AsyncQueueSink:
    """Hands events to a background thread that drains into an inner sink.

    The producing (hot) path pays only a bounded non-blocking enqueue; a
    single daemon thread performs the serialization and I/O, so event order
    is preserved and the inner sink's output is byte-identical to writing
    it directly — provided nothing was dropped.  When the queue is full the
    event is *dropped* and counted in ``dropped`` rather than blocking the
    control loop (the serving trade-off: lose telemetry, never stall
    inference).

    ``close()`` drains everything already enqueued, joins the worker, and
    closes the inner sink.
    """

    _SENTINEL = None

    def __init__(self, inner: "EventSink", *, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.inner = inner
        self.capacity = capacity
        self.events_written = 0
        self.dropped = 0
        self._queue: queue.Queue[Event | None] = queue.Queue(maxsize=capacity)
        self._closed = False
        self._worker = threading.Thread(
            target=self._drain, name="repro-obs-async-sink", daemon=True
        )
        self._worker.start()

    def _drain(self) -> None:
        while True:
            event = self._queue.get()
            if event is self._SENTINEL:
                self._queue.task_done()
                return
            self.inner.write(event)
            self.events_written += 1
            self._queue.task_done()

    def write(self, event: Event) -> None:
        """Enqueue one event; drop (and count) if the queue is full."""
        if self._closed:
            raise ValueError("write to a closed AsyncQueueSink")
        try:
            self._queue.put_nowait(event)
        except queue.Full:
            self.dropped += 1

    @property
    def pending(self) -> int:
        """Events enqueued but not yet written by the worker."""
        return self._queue.qsize()

    def close(self) -> None:
        """Drain the queue, stop the worker, and close the inner sink."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(self._SENTINEL)  # blocks until there is room
        self._worker.join()
        self.inner.close()


class EdgeFilterSink:
    """Forwards only the events anchored at one edge to an inner sink.

    Only per-edge events (those with an ``edge`` field — model switches and
    block boundaries) can match; system-wide events such as slot starts,
    trades, dual updates, and emissions carry no edge and are dropped.
    ``events_seen`` counts everything offered, ``events_forwarded`` what
    passed the filter.
    """

    def __init__(self, inner: "EventSink", edge: int) -> None:
        self.inner = inner
        self.edge = int(edge)
        self.events_seen = 0
        self.events_forwarded = 0
        self.forwarded_counts: dict[str, int] = {}

    def write(self, event: Event) -> None:
        """Forward ``event`` iff it is anchored at the configured edge."""
        self.events_seen += 1
        if getattr(event, "edge", None) == self.edge:
            self.events_forwarded += 1
            counts = self.forwarded_counts
            counts[event.type] = counts.get(event.type, 0) + 1
            self.inner.write(event)

    def close(self) -> None:
        """Close the wrapped sink."""
        self.inner.close()


def iter_events(path: str | Path) -> Iterator[Event]:
    """Stream a JSONL event log lazily, one typed event at a time.

    Unlike :func:`read_events` this never materializes the log: memory use
    is O(1) in the trace size, so multi-GB serve logs replay fine.  Blank
    lines are skipped.  A *final* line that fails to parse and has no
    trailing newline is treated as the torn write of a crashed producer and
    silently ends the stream; a malformed line anywhere else (or a complete
    final line) raises ``ValueError`` with the line number — corruption in
    the middle of a log must surface, only an honest truncation is
    forgiven.
    """
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            stripped = raw.strip()
            if not stripped:
                continue
            try:
                payload = json.loads(stripped)
            except json.JSONDecodeError as exc:
                if not raw.endswith("\n"):
                    return
                raise ValueError(
                    f"{path}:{lineno}: malformed JSONL event: {exc}"
                ) from exc
            yield event_from_dict(payload)


def read_events(path: str | Path) -> list[Event]:
    """Load a JSONL event log back into typed events (blank lines skipped)."""
    events: list[Event] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events
