"""Re-aggregate a JSONL event trace into run-level summaries.

``repro trace --replay log.jsonl`` routes here: a recorded trace — from the
simulator's tracer or a :mod:`repro.serve` run — is folded back into the
per-edge and trading summaries without re-executing anything.  Serve logs
round-trip: the aggregates read off the trace match the live run's obs
counters.

Stays stdlib-only (like the rest of :mod:`repro.obs`); table *rendering*
belongs to the caller.
"""

from __future__ import annotations

import heapq
import operator
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.obs.events import Event
from repro.obs.sinks import iter_events

__all__ = [
    "EdgeSummary",
    "TraceSummary",
    "merge_events",
    "summarize_events",
    "summarize_trace",
    "summarize_traces",
]


@dataclass(frozen=True)
class EdgeSummary:
    """Aggregates of one edge's per-edge events across the trace."""

    edge: int
    switches: int = 0
    block_boundaries: int = 0
    feedback_losses: int = 0
    retries: int = 0
    arrivals: int = 0
    shed: int = 0


@dataclass(frozen=True)
class TraceSummary:
    """Everything ``repro trace --replay`` reports about one trace."""

    events_total: int
    slots_seen: int
    horizon: int
    event_counts: dict[str, int] = field(default_factory=dict)
    edges: dict[int, EdgeSummary] = field(default_factory=dict)
    faults_by_kind: dict[str, int] = field(default_factory=dict)
    total_bought: float = 0.0
    total_sold: float = 0.0
    trading_cost: float = 0.0
    trades_rejected: int = 0
    snapshots: int = 0
    final_cumulative_kg: float = 0.0
    final_holdings_kg: float = 0.0
    final_violation_kg: float = 0.0
    final_dual: float | None = None

    def edge_rows(self) -> list[list[object]]:
        """Per-edge table rows (sorted by edge index)."""
        return [
            [
                summary.edge,
                summary.arrivals,
                summary.switches,
                summary.block_boundaries,
                summary.feedback_losses,
                summary.retries,
                summary.shed,
            ]
            for summary in sorted(self.edges.values(), key=lambda s: s.edge)
        ]

    def event_rows(self) -> list[list[object]]:
        """Event-type count rows (sorted by type tag)."""
        return [[tag, count] for tag, count in sorted(self.event_counts.items())]


def summarize_events(events: Iterable[Event]) -> TraceSummary:
    """Fold typed events into a :class:`TraceSummary`."""
    counts: dict[str, int] = {}
    slots: set[int] = set()
    horizon = 0
    edges: dict[int, dict[str, int]] = {}
    faults: dict[str, int] = {}
    bought = 0.0
    sold = 0.0
    cost = 0.0
    rejected = 0
    snapshots = 0
    cumulative = 0.0
    holdings = 0.0
    violation = 0.0
    dual: float | None = None
    total = 0

    def edge_bucket(edge: int) -> dict[str, int]:
        return edges.setdefault(
            int(edge),
            {
                "switches": 0,
                "block_boundaries": 0,
                "feedback_losses": 0,
                "retries": 0,
                "arrivals": 0,
                "shed": 0,
            },
        )

    for event in events:
        total += 1
        tag = event.type
        counts[tag] = counts.get(tag, 0) + 1
        if tag == "slot_start":
            slots.add(event.t)
            horizon = max(horizon, int(event.horizon))
        elif tag == "model_switch":
            edge_bucket(event.edge)["switches"] += 1
        elif tag == "block_boundary":
            edge_bucket(event.edge)["block_boundaries"] += 1
        elif tag == "feedback_lost":
            edge_bucket(event.edge)["feedback_losses"] += 1
        elif tag == "retry":
            edge_bucket(event.edge)["retries"] += 1
        elif tag == "arrival":
            edge_bucket(event.edge)["arrivals"] += int(event.count)
        elif tag == "queue_shed":
            edge_bucket(event.edge)["shed"] += int(event.count)
        elif tag == "fault_injected":
            faults[event.kind] = faults.get(event.kind, 0) + 1
        elif tag == "trade":
            bought += float(event.buy)
            sold += float(event.sell)
            cost += float(event.cost)
        elif tag == "trade_rejected":
            rejected += 1
        elif tag == "snapshot":
            snapshots += 1
        elif tag == "emission":
            cumulative = float(event.cumulative_kg)
            holdings = float(event.holdings_kg)
            violation = float(event.violation_kg)
        elif tag == "dual_update":
            dual = float(event.dual)

    return TraceSummary(
        events_total=total,
        slots_seen=len(slots),
        horizon=horizon,
        event_counts=counts,
        edges={
            edge: EdgeSummary(edge=edge, **bucket)
            for edge, bucket in edges.items()
        },
        faults_by_kind=faults,
        total_bought=bought,
        total_sold=sold,
        trading_cost=cost,
        trades_rejected=rejected,
        snapshots=snapshots,
        final_cumulative_kg=cumulative,
        final_holdings_kg=holdings,
        final_violation_kg=violation,
        final_dual=dual,
    )


def merge_events(paths: Sequence[str | Path]) -> Iterator[Event]:
    """K-way merge of several JSONL traces into one deterministic stream.

    Sharded serve runs write one log per tier — the parent's (slot starts,
    trades, snapshots) and each worker shard's (arrivals, kernel events).
    Events are merged by slot, ties broken by the *position* of the source
    path in ``paths`` and then by within-file order, so the interleaving is
    a pure function of the path list — independent of file sizes, worker
    timing, or how the logs happened to flush.

    Each file is streamed lazily (``iter_events``), so the merge stays O(1)
    in memory per file, like :func:`summarize_trace`.
    """

    def keyed(index: int, path: str | Path):
        for seq, event in enumerate(iter_events(path)):
            yield (int(getattr(event, "t", 0)), index, seq), event

    streams = [keyed(i, path) for i, path in enumerate(paths)]
    for _, event in heapq.merge(*streams, key=operator.itemgetter(0)):
        yield event


def summarize_traces(paths: Sequence[str | Path]) -> TraceSummary:
    """Summarize one or many traces as a single logical run.

    With one path this is exactly :func:`summarize_trace`; with several it
    folds the deterministic :func:`merge_events` interleaving, so a sharded
    run's parent + per-shard logs summarize to the same :class:`TraceSummary`
    an equivalent single-process run would produce.
    """
    if len(paths) == 1:
        return summarize_trace(paths[0])
    return summarize_events(merge_events(paths))


def summarize_trace(path: str | Path) -> TraceSummary:
    """Stream a JSONL trace from disk and summarize it in O(1) memory.

    Events are folded incrementally via :func:`repro.obs.sinks.iter_events`,
    so the trace is never materialized — ``repro trace --replay`` handles
    multi-GB serve logs without loading them.  A truncated final line
    (crashed writer) ends the stream cleanly; corruption elsewhere raises.
    """
    return summarize_events(iter_events(path))
